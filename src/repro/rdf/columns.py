"""Columnar bulk-traversal primitives over the id-level indexes.

The row-at-a-time engines ask the store one question per *item* — "the
objects of this subject under this predicate" — which costs a dictionary
probe, an iterator and a per-item sort for every member of the frontier.
This module asks one question per *frontier*: flat, parallel columns of
dense int ids move through the SPO/POS indexes in bulk, every per-node
answer is computed (and its sort order established) once regardless of
how many frontier positions share the node, and terms are decoded only
when a column reaches a result boundary.

Layout: a frontier is a pair of parallel columns ``(src, dst)`` where
``src[k]`` is the *origin index* of entry ``k`` (the position of the
item the value belongs to in the caller's domain list) and ``dst[k]``
is a node id.  :func:`follow` expands such a frontier through one
property step; because expansion preserves entry order and emits each
node's successors in term sort order, the resulting column is ordered
exactly like the row engine's per-item evaluation — item-major, sorted
within each step — so order-sensitive aggregates (SAMPLE,
GROUP_CONCAT) agree byte-for-byte between the engines.

Columns are plain Python lists *in process*: they must also carry the
identity encoding's Term "ids" (``Graph(encoded=False)``), and CPython
list append/iteration beats typed ``array`` boxing on the hot path.
Measured at 1–2 M ids (CPython 3.x, this container): appending 1 M ids
costs ~33 ms into a list vs ~84 ms into an ``array('q')``, and a
follow-shaped pipeline (append origins + extend successor tuples) runs
~66 ms with lists vs ~89 ms with arrays — every id crossing into an
array is boxed/unboxed, so arrays only lose ground while the data
stays in one interpreter.  The trade inverts at a *process boundary*:
pickling 1 M ids costs ~5.7 ms from an ``array('q')`` vs ~15.8 ms from
a list (3× — the array ships as one contiguous buffer), and
array→array extends copy memory instead of objects.  Hence the hybrid:
:data:`COMPACT` column mode (``ColumnEngine(graph, compact=True)`` or
:func:`pack_ids`) builds ``array('q')`` columns for payloads that are
about to cross to shard workers, and everything in-process stays a
list.


:class:`ColumnEngine` carries the per-evaluation memos (sorted
successor lists, term sort keys, restriction verdicts); the
module-level :func:`follow`, :func:`types_of` and
:func:`filter_literals` are thin one-shot wrappers over a fresh engine
for callers that do not need to share memos across steps.
"""

from __future__ import annotations

from array import array
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.rdf.graph import Graph
from repro.rdf.terms import Term
from repro.sparql.errors import ExpressionError
from repro.sparql.functions import compare

#: A column is a flat list of node ids (ints under the term dictionary,
#: Terms under the identity encoding) or of origin indexes.  Compact
#: columns are ``array('q')`` buffers of the same ids (transport mode).
Column = List

#: The typecode of compact id columns: signed 64-bit, room for any
#: dense dictionary id.
ID_TYPECODE = "q"

#: Marker for the compact (array-backed) column mode.
COMPACT = "compact"


def new_column(values: Iterable = (), compact: bool = False) -> Column:
    """A fresh column — a list, or an ``array('q')`` when ``compact``.

    Both shapes share the ``append`` / ``extend`` / iteration protocol,
    so the traversal code below is mode-agnostic; only *construction*
    picks the layout.
    """
    if compact:
        return array(ID_TYPECODE, values)
    return list(values)


def pack_ids(ids: Iterable[int]) -> array:
    """An ``array('q')`` copy of an id collection, for crossing a
    process boundary: pickling the contiguous buffer is ~3× faster than
    pickling the equivalent list/set (measured at 1 M ids)."""
    return array(ID_TYPECODE, ids)


class ColumnEngine:
    """Bulk traversal over one graph with per-evaluation memoization.

    The engine is cheap to build and meant to live for one evaluation
    (one HIFUN query, one facet batch): its memos are keyed on node ids
    and are only valid while the graph is not mutated.
    """

    __slots__ = ("graph", "decode", "compact", "_succ", "_sort_keys",
                 "_verdicts")

    def __init__(self, graph: Graph, compact: bool = False):
        if compact and not graph.encoded:
            raise ValueError(
                "compact (array-backed) columns need int ids; "
                "Graph(encoded=False) columns carry Terms")
        self.graph = graph
        #: ``array('q')`` output columns (transport mode) vs plain lists.
        self.compact = compact
        #: Bound id → canonical Term decoder (list indexing).
        self.decode: Callable = graph.decode_id
        # (prop_id, inverse) → {node_id: tuple of successor ids, sorted}
        self._succ: Dict[Tuple[int, bool], Dict[int, Tuple[int, ...]]] = {}
        self._sort_keys: Dict[int, tuple] = {}
        # (comparator, value) → {node_id: bool}
        self._verdicts: Dict[Tuple[str, Term], Dict[int, bool]] = {}

    # ------------------------------------------------------------------
    # Sort order
    # ------------------------------------------------------------------
    def sort_key(self, ident: int) -> tuple:
        """The term sort key of a node id, memoized."""
        key = self._sort_keys.get(ident)
        if key is None:
            key = self._sort_keys[ident] = self.decode(ident).sort_key()
        return key

    def sort_ids(self, ids: Iterable[int]) -> List[int]:
        """Ids ordered by their terms' sort keys (the row-engine order)."""
        return sorted(ids, key=self.sort_key)

    # ------------------------------------------------------------------
    # Bulk traversal
    # ------------------------------------------------------------------
    def successors(self, node_id: int, prop_id: int, inverse: bool = False) -> Tuple[int, ...]:
        """The ``p``-successors of one node in term sort order, memoized.

        Forward steps read the SPO index (literals have no SPO row, so a
        literal node naturally has no forward successors — the same
        verdict the row engine reaches explicitly); inverse steps read
        the POS index.
        """
        memo = self._succ.get((prop_id, inverse))
        if memo is None:
            memo = self._succ[(prop_id, inverse)] = {}
        cached = memo.get(node_id)
        if cached is None:
            graph = self.graph
            targets = (
                graph.subjects_ids(prop_id, node_id) if inverse
                else graph.objects_ids(node_id, prop_id)
            )
            if targets:
                cached = tuple(sorted(targets, key=self.sort_key))
            else:
                cached = ()
            memo[node_id] = cached
        return cached

    def prefetch(self, nodes: Sequence, prop_id: Optional[int],
                 inverse: bool = False, min_batch: int = 32) -> None:
        """Warm the successor memo for a whole frontier at once.

        On a :class:`~repro.rdf.sharding.ShardedGraph` with an active
        parallel executor this fans the batch out across shard workers
        (the memo entries that come back are byte-identical to the
        one-by-one path, so :meth:`follow` stays order-exact); on every
        other graph — or below ``min_batch`` distinct unmemoized nodes,
        where a fan-out round-trip costs more than the probes — it is a
        no-op and :meth:`follow` computes lazily as before.
        """
        if prop_id is None:
            return
        fanout = getattr(self.graph, "prefetch_successors", None)
        if fanout is None:
            return
        memo = self._succ.get((prop_id, inverse))
        if memo is None:
            memo = self._succ[(prop_id, inverse)] = {}
        missing = {node for node in nodes if node not in memo}
        if len(missing) < min_batch:
            return
        memo.update(fanout(missing, prop_id, inverse, self.sort_key))

    def follow(self, src: Sequence, dst: Sequence, prop_id: Optional[int],
               inverse: bool = False) -> Tuple[Column, Column]:
        """Expand a whole frontier through one property step.

        ``src``/``dst`` are parallel columns (origin index, node id).
        Returns the expanded parallel columns: one entry per edge, in
        frontier order with each node's successors in term sort order.
        A ``prop_id`` of ``None`` (property never seen by the graph)
        yields the empty frontier.
        """
        out_src: Column = new_column(compact=self.compact)
        out_dst: Column = new_column(compact=self.compact)
        if prop_id is None or not dst:
            return out_src, out_dst
        successors = self.successors
        append_src = out_src.append
        extend_dst = out_dst.extend
        for origin, node in zip(src, dst):
            targets = successors(node, prop_id, inverse)
            if targets:
                for _ in targets:
                    append_src(origin)
                extend_dst(targets)
        return out_src, out_dst

    # ------------------------------------------------------------------
    # Bulk restriction tests
    # ------------------------------------------------------------------
    def passes(self, ident: int, comparator: str, value: Term) -> bool:
        """Does the decoded node satisfy ``comparator value``?  Memoized
        per distinct id — a column with many repeats decodes and
        compares each distinct value once."""
        memo = self._verdicts.get((comparator, value))
        if memo is None:
            memo = self._verdicts[(comparator, value)] = {}
        verdict = memo.get(ident)
        if verdict is None:
            try:
                verdict = compare(comparator, self.decode(ident), value)
            except ExpressionError:
                verdict = False
            memo[ident] = verdict
        return verdict

    def filter_column(self, src: Sequence, dst: Sequence, comparator: str,
                      value: Term) -> Tuple[Column, Column]:
        """Keep the column entries whose value satisfies the restriction."""
        out_src: Column = new_column(compact=self.compact)
        out_dst: Column = new_column(compact=self.compact)
        passes = self.passes
        for origin, node in zip(src, dst):
            if passes(node, comparator, value):
                out_src.append(origin)
                out_dst.append(node)
        return out_src, out_dst

    def decode_column(self, dst: Sequence) -> List[Term]:
        """Late-decode a value column to canonical terms (one list-index
        lookup per entry; the dictionary guarantees canonical objects)."""
        decode = self.decode
        return [decode(ident) for ident in dst]


# ---------------------------------------------------------------------------
# One-shot convenience wrappers (the public primitive surface)
# ---------------------------------------------------------------------------
def follow(graph: Graph, src_ids: Sequence, prop_id: Optional[int],
           inverse: bool = False) -> Tuple[Column, Column]:
    """Bulk one-step traversal: expand every id in ``src_ids`` through
    ``prop_id`` (object direction; ``inverse=True`` walks OSP-wards via
    the POS index).  Returns parallel ``(src_index_col, dst_id_col)``
    columns — ``src_index_col[k]`` is the *position* in ``src_ids`` the
    value ``dst_id_col[k]`` was reached from."""
    engine = ColumnEngine(graph)
    return engine.follow(list(range(len(src_ids))), src_ids, prop_id, inverse)


def types_of(graph: Graph, ids: Iterable) -> Dict[int, FrozenSet[int]]:
    """The ``rdf:type`` id sets of many nodes in one SPO-index sweep."""
    from repro.rdf.namespace import RDF

    type_id = graph.encode_term(RDF.type)
    out: Dict[int, FrozenSet[int]] = {}
    if type_id is None:
        return {ident: frozenset() for ident in ids}
    for ident in ids:
        out[ident] = frozenset(graph.objects_ids(ident, type_id))
    return out


def filter_literals(graph: Graph, col: Sequence, comparator: str,
                    value: Term) -> Column:
    """The positions of ``col`` whose decoded term satisfies the
    restriction ``comparator value`` (type errors fail, per SPARQL).
    Verdicts are computed once per distinct id."""
    engine = ColumnEngine(graph)
    out: Column = []
    passes = engine.passes
    for position, ident in enumerate(col):
        if passes(ident, comparator, value):
            out.append(position)
    return out


__all__ = [
    "COMPACT",
    "Column",
    "ColumnEngine",
    "ID_TYPECODE",
    "filter_literals",
    "follow",
    "new_column",
    "pack_ids",
    "types_of",
]
