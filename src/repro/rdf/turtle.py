"""A Turtle parser and serializer (practical subset).

Supports the Turtle features the bundled datasets and examples use:

* ``@prefix`` / ``@base`` directives (and SPARQL-style ``PREFIX``/``BASE``);
* prefixed names and absolute IRIs;
* ``a`` as shorthand for ``rdf:type``;
* predicate lists (``;``) and object lists (``,``);
* blank node labels (``_:b``) and anonymous blank nodes (``[...]``);
* plain, language-tagged, and datatyped string literals (with ``'``/``"``
  and their long forms);
* numeric shorthand (integers, decimals, doubles) and booleans.

Collections (``( ... )``) are intentionally unsupported; the parser
raises a clear error if it encounters one.
"""

from __future__ import annotations

import re
from typing import Dict, Iterator, List, Optional, Tuple

from repro.rdf.graph import Graph
from repro.rdf.namespace import RDF, WELL_KNOWN_PREFIXES
from repro.rdf.terms import (
    BNode,
    IRI,
    Literal,
    Term,
    XSD_BOOLEAN,
    XSD_DECIMAL,
    XSD_DOUBLE,
    XSD_INTEGER,
    XSD_STRING,
)


class TurtleError(ValueError):
    """Raised on malformed Turtle input, with position information."""

    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


_TOKEN_SPEC = [
    ("COMMENT", r"#[^\n]*"),
    ("WS", r"[ \t\r\n]+"),
    ("LONG_STRING", r'"""(?:[^"\\]|\\.|"(?!""))*"""' + r"|'''(?:[^'\\]|\\.|'(?!''))*'''"),
    ("STRING", r'"(?:[^"\\\n]|\\.)*"' + r"|'(?:[^'\\\n]|\\.)*'"),
    ("IRIREF", r"<[^<>\"{}|^`\\\x00-\x20]*>"),
    ("PREFIX_DIR", r"@prefix\b|@base\b"),
    ("SPARQL_DIR", r"(?i:PREFIX|BASE)(?=[ \t])"),
    ("DOUBLE", r"[+-]?(?:\d+\.\d*|\.\d+|\d+)[eE][+-]?\d+"),
    ("DECIMAL", r"[+-]?\d*\.\d+"),
    ("INTEGER", r"[+-]?\d+"),
    ("BOOLEAN", r"\b(?:true|false)\b"),
    ("BNODE", r"_:[A-Za-z0-9_][A-Za-z0-9_.-]*"),
    ("LANGTAG", r"@[A-Za-z]+(?:-[A-Za-z0-9]+)*"),
    ("DTYPE", r"\^\^"),
    ("PNAME", r"[A-Za-z_][A-Za-z0-9_.-]*?:[A-Za-z0-9_][A-Za-z0-9_.%-]*|[A-Za-z_][A-Za-z0-9_.-]*?:"),
    ("A", r"\ba\b"),
    ("PUNCT", r"[;,.\[\]()]"),
]
_TOKEN_RE = re.compile("|".join(f"(?P<{name}>{pat})" for name, pat in _TOKEN_SPEC))

_UNESCAPE_RE = re.compile(r'\\[\\"\'nrtbf]|\\u[0-9A-Fa-f]{4}|\\U[0-9A-Fa-f]{8}')
_UNESCAPES = {
    "\\\\": "\\",
    '\\"': '"',
    "\\'": "'",
    "\\n": "\n",
    "\\r": "\r",
    "\\t": "\t",
    "\\b": "\b",
    "\\f": "\f",
}


def _unescape(text: str) -> str:
    def repl(m: re.Match) -> str:
        token = m.group(0)
        if token in _UNESCAPES:
            return _UNESCAPES[token]
        return chr(int(token[2:], 16))

    return _UNESCAPE_RE.sub(repl, text)


class _Token:
    __slots__ = ("kind", "text", "line", "column")

    def __init__(self, kind: str, text: str, line: int, column: int):
        self.kind = kind
        self.text = text
        self.line = line
        self.column = column

    def __repr__(self):
        return f"_Token({self.kind}, {self.text!r})"


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    line = 1
    line_start = 0
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise TurtleError(
                f"unexpected character {text[pos]!r}", line, pos - line_start + 1
            )
        kind = m.lastgroup
        value = m.group(0)
        if kind not in ("WS", "COMMENT"):
            tokens.append(_Token(kind, value, line, pos - line_start + 1))
        newlines = value.count("\n")
        if newlines:
            line += newlines
            line_start = pos + value.rfind("\n") + 1
        pos = m.end()
    return tokens


class TurtleParser:
    """Recursive-descent parser producing triples from Turtle text."""

    def __init__(self, text: str, base: str = ""):
        self._tokens = _tokenize(text)
        self._pos = 0
        self._base = base
        self._prefixes: Dict[str, str] = {}
        self._triples: List[Tuple[Term, IRI, Term]] = []
        self._bnode_count = 0

    # -- token stream helpers ------------------------------------------
    def _peek(self) -> Optional[_Token]:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            last = self._tokens[-1] if self._tokens else _Token("EOF", "", 1, 1)
            raise TurtleError("unexpected end of input", last.line, last.column)
        self._pos += 1
        return token

    def _expect_punct(self, char: str) -> None:
        token = self._next()
        if token.kind != "PUNCT" or token.text != char:
            raise TurtleError(
                f"expected {char!r}, got {token.text!r}", token.line, token.column
            )

    def _error(self, message: str, token: _Token) -> None:
        raise TurtleError(message, token.line, token.column)

    # -- parsing --------------------------------------------------------
    def parse(self) -> List[Tuple[Term, IRI, Term]]:
        while self._peek() is not None:
            token = self._peek()
            if token.kind == "PREFIX_DIR":
                self._directive(at_form=True)
            elif token.kind == "SPARQL_DIR":
                self._directive(at_form=False)
            else:
                self._triples_block()
        return self._triples

    def _directive(self, at_form: bool) -> None:
        token = self._next()
        keyword = token.text.lstrip("@").lower()
        if keyword == "prefix":
            name_token = self._next()
            if name_token.kind != "PNAME" or not name_token.text.endswith(":"):
                self._error("expected prefix name", name_token)
            iri_token = self._next()
            if iri_token.kind != "IRIREF":
                self._error("expected IRI after prefix name", iri_token)
            self._prefixes[name_token.text[:-1]] = self._resolve(iri_token.text[1:-1])
        else:  # base
            iri_token = self._next()
            if iri_token.kind != "IRIREF":
                self._error("expected IRI after @base", iri_token)
            self._base = self._resolve(iri_token.text[1:-1])
        if at_form:
            self._expect_punct(".")

    def _resolve(self, iri: str) -> str:
        if self._base and "://" not in iri and not iri.startswith("urn:"):
            return self._base + iri
        return iri

    def _triples_block(self) -> None:
        subject = self._subject()
        self._predicate_object_list(subject)
        self._expect_punct(".")

    def _subject(self) -> Term:
        token = self._peek()
        if token.kind == "PUNCT" and token.text == "[":
            return self._anon_bnode()
        term = self._term()
        if isinstance(term, Literal):
            self._error("literal cannot be a subject", token)
        return term

    def _predicate_object_list(self, subject: Term) -> None:
        while True:
            predicate = self._predicate()
            while True:
                obj = self._object()
                self._triples.append((subject, predicate, obj))
                token = self._peek()
                if token is not None and token.kind == "PUNCT" and token.text == ",":
                    self._next()
                    continue
                break
            token = self._peek()
            if token is not None and token.kind == "PUNCT" and token.text == ";":
                self._next()
                nxt = self._peek()
                # allow a trailing ';' before '.' or ']'
                if nxt is not None and nxt.kind == "PUNCT" and nxt.text in ".]":
                    return
                continue
            return

    def _predicate(self) -> IRI:
        token = self._next()
        if token.kind == "A":
            return RDF.type
        if token.kind == "IRIREF":
            return IRI(self._resolve(token.text[1:-1]))
        if token.kind == "PNAME":
            return self._pname(token)
        self._error(f"expected a predicate, got {token.text!r}", token)

    def _object(self) -> Term:
        token = self._peek()
        if token.kind == "PUNCT" and token.text == "[":
            return self._anon_bnode()
        if token.kind == "PUNCT" and token.text == "(":
            self._error("RDF collections are not supported by this parser", token)
        return self._term()

    def _anon_bnode(self) -> BNode:
        self._expect_punct("[")
        self._bnode_count += 1
        node = BNode(f"anon{self._bnode_count}")
        token = self._peek()
        if not (token.kind == "PUNCT" and token.text == "]"):
            self._predicate_object_list(node)
        self._expect_punct("]")
        return node

    def _term(self) -> Term:
        token = self._next()
        if token.kind == "IRIREF":
            return IRI(self._resolve(token.text[1:-1]))
        if token.kind == "PNAME":
            return self._pname(token)
        if token.kind == "BNODE":
            return BNode(token.text[2:])
        if token.kind in ("STRING", "LONG_STRING"):
            return self._literal(token)
        if token.kind == "INTEGER":
            return Literal(token.text, XSD_INTEGER)
        if token.kind == "DECIMAL":
            return Literal(token.text, XSD_DECIMAL)
        if token.kind == "DOUBLE":
            return Literal(token.text, XSD_DOUBLE)
        if token.kind == "BOOLEAN":
            return Literal(token.text, XSD_BOOLEAN)
        self._error(f"expected an RDF term, got {token.text!r}", token)

    def _literal(self, token: _Token) -> Literal:
        text = token.text
        if token.kind == "LONG_STRING":
            lexical = _unescape(text[3:-3])
        else:
            lexical = _unescape(text[1:-1])
        nxt = self._peek()
        if nxt is not None and nxt.kind == "LANGTAG":
            self._next()
            return Literal(lexical, XSD_STRING, nxt.text[1:])
        if nxt is not None and nxt.kind == "DTYPE":
            self._next()
            dt_token = self._next()
            if dt_token.kind == "IRIREF":
                datatype = self._resolve(dt_token.text[1:-1])
            elif dt_token.kind == "PNAME":
                datatype = self._pname(dt_token).value
            else:
                self._error("expected datatype IRI after ^^", dt_token)
            return Literal(lexical, datatype)
        return Literal(lexical, XSD_STRING)

    def _pname(self, token: _Token) -> IRI:
        prefix, _, local = token.text.partition(":")
        namespaces = {**WELL_KNOWN_PREFIXES, **self._prefixes}
        if prefix not in namespaces:
            self._error(f"undefined prefix {prefix!r}", token)
        return IRI(namespaces[prefix] + local)


def parse(text: str, graph: Optional[Graph] = None, base: str = "") -> Graph:
    """Parse Turtle text into ``graph`` (a new one by default)."""
    if graph is None:
        graph = Graph()
    graph.add_all(TurtleParser(text, base).parse())
    return graph


def parse_file(path: str, graph: Optional[Graph] = None) -> Graph:
    with open(path, encoding="utf-8") as handle:
        return parse(handle.read(), graph)


def serialize(graph: Graph, prefixes: Optional[Dict[str, str]] = None) -> str:
    """Serialize a graph as Turtle, grouping by subject and predicate."""
    prefixes = dict(prefixes or WELL_KNOWN_PREFIXES)
    lines = [f"@prefix {name}: <{base}> ." for name, base in sorted(prefixes.items())]
    lines.append("")

    def shorten(term: Term) -> str:
        if isinstance(term, IRI):
            if term == RDF.type:
                return "a"
            for name, base in prefixes.items():
                if term.value.startswith(base):
                    local = term.value[len(base):]
                    if re.fullmatch(r"[A-Za-z0-9_.-]+", local or ""):
                        return f"{name}:{local}"
            return term.n3()
        if isinstance(term, Literal) and term.datatype != XSD_STRING and not term.language:
            for name, base in prefixes.items():
                if term.datatype.startswith(base):
                    local = term.datatype[len(base):]
                    lex = term.n3().split("^^")[0]
                    return f"{lex}^^{name}:{local}"
        return term.n3()

    for subject in sorted(graph.all_subjects(), key=lambda t: t.sort_key()):
        predicate_parts = []
        for predicate in sorted(graph.predicates(subject, None), key=lambda t: t.sort_key()):
            objs = sorted(graph.objects(subject, predicate), key=lambda t: t.sort_key())
            rendered = ", ".join(shorten(o) for o in objs)
            predicate_parts.append(f"{shorten(predicate)} {rendered}")
        body = " ;\n    ".join(predicate_parts)
        lines.append(f"{shorten(subject)} {body} .")
    return "\n".join(lines) + "\n"
