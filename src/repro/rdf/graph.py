"""An in-memory, indexed RDF triple store.

The store keeps three permutation indexes (SPO, POS, OSP) as nested
dictionaries of sets, so every triple-pattern shape resolves through at
most two dictionary lookups.  This is the classic hexastore-lite layout
used by small triple stores and is the substrate for both the SPARQL
evaluator and the faceted-search engine.

Pattern matching uses ``None`` as a wildcard::

    g.triples(None, RDF.type, EX.Laptop)   # all laptops
    g.objects(item, EX.price)              # prices of one item
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, Optional, Set, Tuple

from repro.rdf.terms import BNode, IRI, Literal, Term, Triple, triple


class Graph:
    """A mutable set of RDF triples with SPO/POS/OSP indexes."""

    def __init__(self, triples: Optional[Iterable[Triple]] = None):
        self._spo: Dict[Term, Dict[Term, Set[Term]]] = defaultdict(lambda: defaultdict(set))
        self._pos: Dict[Term, Dict[Term, Set[Term]]] = defaultdict(lambda: defaultdict(set))
        self._osp: Dict[Term, Dict[Term, Set[Term]]] = defaultdict(lambda: defaultdict(set))
        self._size = 0
        self._bnode_counter = 0
        if triples is not None:
            self.add_all(triples)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, s: Term, p: Term, o: Term) -> bool:
        """Add a triple; returns ``True`` if it was not already present."""
        s, p, o = triple(s, p, o)
        objects = self._spo[s][p]
        if o in objects:
            return False
        objects.add(o)
        self._pos[p][o].add(s)
        self._osp[o][s].add(p)
        self._size += 1
        return True

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Add many triples; returns the number actually inserted."""
        added = 0
        for s, p, o in triples:
            if self.add(s, p, o):
                added += 1
        return added

    def remove(self, s: Term, p: Term, o: Term) -> bool:
        """Remove one triple; returns ``True`` if it was present."""
        objects = self._spo.get(s, {}).get(p)
        if not objects or o not in objects:
            return False
        objects.discard(o)
        self._pos[p][o].discard(s)
        self._osp[o][s].discard(p)
        self._size -= 1
        return True

    def new_bnode(self) -> BNode:
        """Mint a blank node with a label unique within this graph."""
        self._bnode_counter += 1
        return BNode(f"b{self._bnode_counter}")

    # ------------------------------------------------------------------
    # Pattern matching
    # ------------------------------------------------------------------
    def triples(
        self,
        s: Optional[Term] = None,
        p: Optional[Term] = None,
        o: Optional[Term] = None,
    ) -> Iterator[Triple]:
        """Iterate all triples matching the pattern (``None`` = wildcard)."""
        if s is not None:
            po = self._spo.get(s)
            if po is None:
                return
            if p is not None:
                objects = po.get(p)
                if objects is None:
                    return
                if o is not None:
                    if o in objects:
                        yield (s, p, o)
                    return
                for obj in objects:
                    yield (s, p, obj)
                return
            for pred, objects in po.items():
                if o is not None:
                    if o in objects:
                        yield (s, pred, o)
                else:
                    for obj in objects:
                        yield (s, pred, obj)
            return
        if p is not None:
            os_ = self._pos.get(p)
            if os_ is None:
                return
            if o is not None:
                for subj in os_.get(o, ()):
                    yield (subj, p, o)
                return
            for obj, subjects in os_.items():
                for subj in subjects:
                    yield (subj, p, obj)
            return
        if o is not None:
            sp = self._osp.get(o)
            if sp is None:
                return
            for subj, preds in sp.items():
                for pred in preds:
                    yield (subj, pred, o)
            return
        for subj, po in self._spo.items():
            for pred, objects in po.items():
                for obj in objects:
                    yield (subj, pred, obj)

    def __contains__(self, t: Triple) -> bool:
        s, p, o = t
        return o in self._spo.get(s, {}).get(p, ())

    def count(self, s=None, p=None, o=None) -> int:
        """Number of triples matching the pattern, without materializing."""
        if s is None and p is None and o is None:
            return self._size
        if s is not None and p is not None and o is None:
            return len(self._spo.get(s, {}).get(p, ()))
        if p is not None and o is not None and s is None:
            return len(self._pos.get(p, {}).get(o, ()))
        return sum(1 for _ in self.triples(s, p, o))

    # ------------------------------------------------------------------
    # Single-slot accessors
    # ------------------------------------------------------------------
    def subjects(self, p=None, o=None) -> Iterator[Term]:
        seen = set()
        for s, _, _ in self.triples(None, p, o):
            if s not in seen:
                seen.add(s)
                yield s

    def predicates(self, s=None, o=None) -> Iterator[Term]:
        seen = set()
        for _, p, _ in self.triples(s, None, o):
            if p not in seen:
                seen.add(p)
                yield p

    def objects(self, s=None, p=None) -> Iterator[Term]:
        seen = set()
        for _, _, o in self.triples(s, p, None):
            if o not in seen:
                seen.add(o)
                yield o

    def value(self, s=None, p=None, o=None) -> Optional[Term]:
        """The single term filling the one ``None`` slot, or ``None``."""
        for t in self.triples(s, p, o):
            if s is None:
                return t[0]
            if p is None:
                return t[1]
            return t[2]
        return None

    # ------------------------------------------------------------------
    # Whole-graph views
    # ------------------------------------------------------------------
    def all_subjects(self) -> Set[Term]:
        return set(self._spo.keys())

    def all_predicates(self) -> Set[Term]:
        return set(self._pos.keys())

    def all_objects(self) -> Set[Term]:
        return set(self._osp.keys())

    def all_terms(self) -> Set[Term]:
        return self.all_subjects() | self.all_predicates() | self.all_objects()

    def all_resources(self) -> Set[Term]:
        """All IRIs and blank nodes appearing as subject or object."""
        nodes = set(self._spo.keys())
        nodes.update(o for o in self._osp.keys() if isinstance(o, (IRI, BNode)))
        return nodes

    def all_literals(self) -> Set[Literal]:
        return {o for o in self._osp.keys() if isinstance(o, Literal)}

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Triple]:
        return self.triples()

    def __bool__(self) -> bool:
        return self._size > 0

    def __eq__(self, other) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return len(self) == len(other) and all(t in other for t in self)

    def __repr__(self):
        return f"<Graph with {self._size} triples>"

    # ------------------------------------------------------------------
    # Set operations
    # ------------------------------------------------------------------
    def copy(self) -> "Graph":
        return Graph(self.triples())

    def union(self, other: "Graph") -> "Graph":
        result = self.copy()
        result.add_all(other.triples())
        return result

    def difference(self, other: "Graph") -> "Graph":
        return Graph(t for t in self if t not in other)

    def filter_subjects(self, subjects: Set[Term]) -> "Graph":
        """The sub-graph of triples whose subject is in ``subjects``."""
        return Graph(t for t in self if t[0] in subjects)
