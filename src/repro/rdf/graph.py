"""An in-memory, dictionary-encoded, indexed RDF triple store.

The store interns every term into a :class:`~repro.rdf.dictionary.
TermDictionary` and keeps three permutation indexes (SPO, POS, OSP) as
nested dictionaries of *int-id* sets, so every triple-pattern shape
resolves through at most two dictionary lookups — on int keys, not on
IRI strings.  Terms are decoded back only at iteration boundaries; the
decoded instances are canonical (one object per id), so downstream
equality checks can short-circuit on identity.  This is the classic
hexastore-lite layout used by small triple stores, made interactive-
fast by the encoding; it is the substrate for both the SPARQL evaluator
and the faceted-search engine.

On top of the indexes the store maintains, incrementally on add/remove:

* ``generation`` — a counter bumped by every successful mutation; the
  query/facet caches stamp their entries with it, which makes staleness
  detection O(1) (see :mod:`repro.caching`);
* per-predicate triple counts, so ``count(None, p, None)`` — the join
  planner's selectivity probe — is O(1) instead of an extent scan
  (per-(predicate, object) counts are O(1) for free via the POS index).

Pattern matching uses ``None`` as a wildcard::

    g.triples(None, RDF.type, EX.Laptop)   # all laptops
    g.objects(item, EX.price)              # prices of one item

``Graph(encoded=False)`` keeps the whole machinery but swaps the
dictionary for the identity encoding — the seed's term-keyed layout —
for the ablation benchmark.

:mod:`repro.rdf.sharding` provides :class:`~repro.rdf.sharding.
ShardedGraph`, the scale-out twin: the same public surface, but the
three indexes are hash-partitioned by subject id into N independent
slices so scans can fan out across shards (and, on multi-core hosts,
across worker processes).  The pattern-matching core is shared — see
:func:`_match_pattern` — so both layouts answer every triple pattern
through identical code.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Set, Tuple

from repro.caching import GenerationCache
from repro.rdf.dictionary import PassthroughDictionary, TermDictionary
from repro.rdf.terms import BNode, IRI, Literal, Term, Triple, triple

#: Shared empty id set returned by the ``*_ids`` accessors on absence.
EMPTY_IDS: frozenset = frozenset()


def _index_add(spo, pos, osp, si, pi, oi) -> bool:
    """Insert one encoded triple into a (spo, pos, osp) index slice.

    Returns ``True`` if the triple was not already present.  Shared by
    :meth:`Graph.add` and the per-shard inserts of
    :class:`repro.rdf.sharding.ShardedGraph`, so both layouts maintain
    their nested maps through identical code.
    """
    po = spo.get(si)
    if po is None:
        po = spo[si] = {}
    objects = po.get(pi)
    if objects is None:
        objects = po[pi] = set()
    if oi in objects:
        return False
    objects.add(oi)
    os_ = pos.get(pi)
    if os_ is None:
        os_ = pos[pi] = {}
    subjects = os_.get(oi)
    if subjects is None:
        subjects = os_[oi] = set()
    subjects.add(si)
    sp = osp.get(oi)
    if sp is None:
        sp = osp[oi] = {}
    preds = sp.get(si)
    if preds is None:
        preds = sp[si] = set()
    preds.add(pi)
    return True


def _index_remove(spo, pos, osp, si, pi, oi) -> bool:
    """Remove one encoded triple from a (spo, pos, osp) index slice,
    pruning emptied slots eagerly.  Returns ``True`` if it was present.
    """
    po = spo.get(si)
    if po is None:
        return False
    objects = po.get(pi)
    if objects is None or oi not in objects:
        return False
    objects.remove(oi)
    if not objects:
        del po[pi]
        if not po:
            del spo[si]
    os_ = pos[pi]
    subjects = os_[oi]
    subjects.remove(si)
    if not subjects:
        del os_[oi]
        if not os_:
            del pos[pi]
    sp = osp[oi]
    preds = sp[si]
    preds.remove(pi)
    if not preds:
        del sp[si]
        if not sp:
            del osp[oi]
    return True


def _match_pattern(lookup, decode, spo, pos, osp, s, p, o) -> Iterator[Triple]:
    """Yield all triples of one (spo, pos, osp) index triple matching the
    pattern (``None`` = wildcard).

    This is the pattern-dispatch core of :meth:`Graph.triples`, factored
    out so a sharded store can run it per shard slice: ``lookup`` /
    ``decode`` are the dictionary's term ↔ id functions and the three
    maps are *one* store slice's nested indexes.  Yielded terms are the
    canonical (interned) instances.
    """
    if s is not None:
        si = lookup(s)
        if si is None:
            return
        po = spo.get(si)
        if po is None:
            return
        if p is not None:
            pi = lookup(p)
            objects = po.get(pi) if pi is not None else None
            if objects is None:
                return
            if o is not None:
                oi = lookup(o)
                if oi is not None and oi in objects:
                    yield (s, p, o)
                return
            for oi in objects:
                yield (s, p, decode(oi))
            return
        if o is not None:
            oi = lookup(o)
            if oi is None:
                return
            for pi, objects in po.items():
                if oi in objects:
                    yield (s, decode(pi), o)
            return
        for pi, objects in po.items():
            pred = decode(pi)
            for oi in objects:
                yield (s, pred, decode(oi))
        return
    if p is not None:
        pi = lookup(p)
        if pi is None:
            return
        os_ = pos.get(pi)
        if os_ is None:
            return
        if o is not None:
            oi = lookup(o)
            if oi is None:
                return
            for si in os_.get(oi, EMPTY_IDS):
                yield (decode(si), p, o)
            return
        for oi, subjects in os_.items():
            obj = decode(oi)
            for si in subjects:
                yield (decode(si), p, obj)
        return
    if o is not None:
        oi = lookup(o)
        if oi is None:
            return
        sp = osp.get(oi)
        if sp is None:
            return
        for si, preds in sp.items():
            subj = decode(si)
            for pi in preds:
                yield (subj, decode(pi), o)
        return
    for si, po in spo.items():
        subj = decode(si)
        for pi, objects in po.items():
            pred = decode(pi)
            for oi in objects:
                yield (subj, pred, decode(oi))


class Graph:
    """A mutable set of RDF triples with SPO/POS/OSP indexes."""

    #: Number of hash partitions; 1 for the plain store.  Subclasses
    #: that partition (see :mod:`repro.rdf.sharding`) override this per
    #: instance, letting engines branch on layout without isinstance.
    num_shards = 1

    def __init__(self, triples: Optional[Iterable[Triple]] = None,
                 encoded: bool = True):
        self._dict = TermDictionary() if encoded else PassthroughDictionary()
        self.encoded = encoded
        self._spo: Dict[int, Dict[int, Set[int]]] = {}
        self._pos: Dict[int, Dict[int, Set[int]]] = {}
        self._osp: Dict[int, Dict[int, Set[int]]] = {}
        self._pred_count: Dict[int, int] = {}
        self._size = 0
        self._bnode_counter = 0
        #: Bumped on every successful mutation; stamps cache entries.
        self.generation = 0
        #: Generation-stamped SPARQL result cache (see repro.sparql).
        self.sparql_cache = GenerationCache(maxsize=128, name="sparql-results")
        if triples is not None:
            self.add_all(triples)

    # ------------------------------------------------------------------
    # Dictionary boundary
    # ------------------------------------------------------------------
    @property
    def dictionary(self):
        """The term dictionary (read-only use; append-only structure)."""
        return self._dict

    def encode_term(self, term: Term) -> Optional[int]:
        """The id of ``term``, or ``None`` if it never entered the graph."""
        return self._dict.lookup(term)

    def encode_terms(self, terms: Iterable[Term]) -> Set[int]:
        """Encode many terms, silently dropping unknown ones (which by
        definition match nothing in the graph)."""
        lookup = self._dict.lookup
        out = set()
        for term in terms:
            ident = lookup(term)
            if ident is not None:
                out.add(ident)
        return out

    def decode_id(self, ident) -> Term:
        return self._dict.decode(ident)

    def decode_ids(self, ids) -> Set[Term]:
        return self._dict.decode_all(ids)

    # ------------------------------------------------------------------
    # Id-level index views (hot paths: facets, joins).  The returned
    # sets/dicts are the live internals — treat them as read-only.
    # ------------------------------------------------------------------
    def objects_ids(self, si, pi):
        """Ids of ``{o | (s, p, o) ∈ G}`` for encoded subject/predicate."""
        po = self._spo.get(si)
        if po is None:
            return EMPTY_IDS
        return po.get(pi, EMPTY_IDS)

    def subjects_ids(self, pi, oi):
        """Ids of ``{s | (s, p, o) ∈ G}`` for encoded predicate/object."""
        os_ = self._pos.get(pi)
        if os_ is None:
            return EMPTY_IDS
        return os_.get(oi, EMPTY_IDS)

    def spo_ids(self, si) -> Dict[int, Set[int]]:
        """The predicate → object-ids map of one encoded subject."""
        return self._spo.get(si) or {}

    def pos_ids(self, pi) -> Dict[int, Set[int]]:
        """The object → subject-ids map of one encoded predicate."""
        return self._pos.get(pi) or {}

    def osp_ids(self, oi) -> Dict[int, Set[int]]:
        """The subject → predicate-ids map of one encoded object."""
        return self._osp.get(oi) or {}

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, s: Term, p: Term, o: Term) -> bool:
        """Add a triple; returns ``True`` if it was not already present."""
        s, p, o = triple(s, p, o)
        encode = self._dict.encode
        si, pi, oi = encode(s), encode(p), encode(o)
        if not _index_add(self._spo, self._pos, self._osp, si, pi, oi):
            return False
        self._size += 1
        self._pred_count[pi] = self._pred_count.get(pi, 0) + 1
        self.generation += 1
        return True

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Add many triples; returns the number actually inserted."""
        added = 0
        for s, p, o in triples:
            if self.add(s, p, o):
                added += 1
        return added

    def remove(self, s: Term, p: Term, o: Term) -> bool:
        """Remove one triple; returns ``True`` if it was present.

        Emptied index slots are pruned eagerly, so add → remove cycles
        (e.g. the temp-class device materializing extensions) leave the
        index maps exactly as they were — no unbounded slot growth.
        """
        lookup = self._dict.lookup
        si, pi, oi = lookup(s), lookup(p), lookup(o)
        if si is None or pi is None or oi is None:
            return False
        if not _index_remove(self._spo, self._pos, self._osp, si, pi, oi):
            return False
        self._size -= 1
        remaining = self._pred_count[pi] - 1
        if remaining:
            self._pred_count[pi] = remaining
        else:
            del self._pred_count[pi]
        self.generation += 1
        return True

    def new_bnode(self) -> BNode:
        """Mint a blank node with a label unique within this graph."""
        self._bnode_counter += 1
        return BNode(f"b{self._bnode_counter}")

    # ------------------------------------------------------------------
    # Pattern matching
    # ------------------------------------------------------------------
    def triples(
        self,
        s: Optional[Term] = None,
        p: Optional[Term] = None,
        o: Optional[Term] = None,
    ) -> Iterator[Triple]:
        """Iterate all triples matching the pattern (``None`` = wildcard).

        Yielded terms are the canonical (interned) instances, so
        consumers may compare them by identity first.
        """
        return _match_pattern(
            self._dict.lookup, self._dict.decode,
            self._spo, self._pos, self._osp, s, p, o,
        )

    def __contains__(self, t: Triple) -> bool:
        s, p, o = t
        lookup = self._dict.lookup
        si, pi, oi = lookup(s), lookup(p), lookup(o)
        if si is None or pi is None or oi is None:
            return False
        po = self._spo.get(si)
        if po is None:
            return False
        return oi in po.get(pi, EMPTY_IDS)

    def count(self, s=None, p=None, o=None) -> int:
        """Number of triples matching the pattern, without materializing.

        The patterns the join planner and the facet engine probe are
        O(1): the full size, ``(None, p, None)`` via the incremental
        per-predicate counters, and the ``(s, p, None)`` /
        ``(None, p, o)`` shapes via direct index-set sizes.
        """
        if s is None and p is None and o is None:
            return self._size
        lookup = self._dict.lookup
        if s is None and p is not None:
            pi = lookup(p)
            if pi is None:
                return 0
            if o is None:
                return self._pred_count.get(pi, 0)
            oi = lookup(o)
            if oi is None:
                return 0
            return len(self.subjects_ids(pi, oi))
        if s is not None and p is not None and o is None:
            si = lookup(s)
            pi = lookup(p)
            if si is None or pi is None:
                return 0
            return len(self.objects_ids(si, pi))
        return sum(1 for _ in self.triples(s, p, o))

    def predicate_counts(self) -> Dict[Term, int]:
        """Triple count per predicate — the O(1)-maintained statistics."""
        decode = self._dict.decode
        return {decode(pi): n for pi, n in self._pred_count.items()}

    # ------------------------------------------------------------------
    # Single-slot accessors
    # ------------------------------------------------------------------
    def subjects(self, p=None, o=None) -> Iterator[Term]:
        seen = set()
        for s, _, _ in self.triples(None, p, o):
            if s not in seen:
                seen.add(s)
                yield s

    def predicates(self, s=None, o=None) -> Iterator[Term]:
        seen = set()
        for _, p, _ in self.triples(s, None, o):
            if p not in seen:
                seen.add(p)
                yield p

    def objects(self, s=None, p=None) -> Iterator[Term]:
        seen = set()
        for _, _, o in self.triples(s, p, None):
            if o not in seen:
                seen.add(o)
                yield o

    def value(self, s=None, p=None, o=None) -> Optional[Term]:
        """The single term filling the one ``None`` slot, or ``None``."""
        for t in self.triples(s, p, o):
            if s is None:
                return t[0]
            if p is None:
                return t[1]
            return t[2]
        return None

    # ------------------------------------------------------------------
    # Whole-graph views
    # ------------------------------------------------------------------
    def all_subjects(self) -> Set[Term]:
        return self._dict.decode_all(self._spo.keys())

    def all_subject_ids(self):
        """The encoded subject ids as a live view (treat as read-only) —
        the id-level twin of :meth:`all_subjects` for the batch engine."""
        return self._spo.keys()

    def all_predicates(self) -> Set[Term]:
        return self._dict.decode_all(self._pos.keys())

    def all_predicate_ids(self):
        """The encoded predicate ids as a live view (treat as read-only)
        — lets the shared-scan facet counter pivot property-major over
        the POS index instead of walking every subject's SPO row."""
        return self._pos.keys()

    def all_objects(self) -> Set[Term]:
        return self._dict.decode_all(self._osp.keys())

    def all_terms(self) -> Set[Term]:
        return self.all_subjects() | self.all_predicates() | self.all_objects()

    def all_resources(self) -> Set[Term]:
        """All IRIs and blank nodes appearing as subject or object."""
        nodes = self.all_subjects()
        nodes.update(
            o for o in self.all_objects() if isinstance(o, (IRI, BNode))
        )
        return nodes

    def all_literals(self) -> Set[Literal]:
        return {o for o in self.all_objects() if isinstance(o, Literal)}

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Triple]:
        return self.triples()

    def __bool__(self) -> bool:
        return self._size > 0

    def __eq__(self, other) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return len(self) == len(other) and all(t in other for t in self)

    def __repr__(self):
        return f"<Graph with {self._size} triples>"

    # ------------------------------------------------------------------
    # Set operations
    # ------------------------------------------------------------------
    def _new_like(self, triples: Optional[Iterable[Triple]] = None) -> "Graph":
        """An empty (or pre-filled) store with this one's layout.

        Subclasses override to preserve their partitioning, so derived
        graphs (copies, differences, schema closures — which start from
        ``source.copy()``) keep the concrete store class.
        """
        return type(self)(triples, encoded=self.encoded)

    def copy(self) -> "Graph":
        return self._new_like(self.triples())

    def union(self, other: "Graph") -> "Graph":
        result = self.copy()
        result.add_all(other.triples())
        return result

    def difference(self, other: "Graph") -> "Graph":
        return self._new_like(t for t in self if t not in other)

    def filter_subjects(self, subjects: Set[Term]) -> "Graph":
        """The sub-graph of triples whose subject is in ``subjects``."""
        return self._new_like(t for t in self if t[0] in subjects)
