"""RDF substrate: terms, graphs, RDFS inference and Turtle/N-Triples I/O.

This package is a self-contained, dependency-free implementation of the
parts of the RDF stack that RDF-Analytics needs:

* :mod:`repro.rdf.terms` — IRIs, blank nodes and typed literals.
* :mod:`repro.rdf.namespace` — namespace helpers and the RDF/RDFS/XSD/OWL
  vocabularies.
* :mod:`repro.rdf.dictionary` — dictionary encoding of terms onto dense
  int ids (the performance substrate of the store).
* :mod:`repro.rdf.graph` — an in-memory, dictionary-encoded triple store
  with SPO/POS/OSP indexes, incremental cardinality statistics and
  pattern matching.
* :mod:`repro.rdf.rdfs` — RDFS closure (subClassOf, subPropertyOf, domain,
  range) and class/property hierarchies.
* :mod:`repro.rdf.sharding` — the hash-partitioned, fan-out-capable
  twin of the store (:class:`ShardedGraph`) for the scale-out plane.
* :mod:`repro.rdf.turtle` / :mod:`repro.rdf.ntriples` — parsers and
  serializers for the Turtle subset used by the bundled datasets.
* :mod:`repro.rdf.bulkload` — streaming bulk loaders feeding (sharded)
  stores without materializing the input.
"""

from repro.rdf.terms import (
    BNode,
    IRI,
    Literal,
    Term,
    Triple,
)
from repro.rdf.namespace import Namespace, OWL, RDF, RDFS, XSD, EX
from repro.rdf.dictionary import PassthroughDictionary, TermDictionary
from repro.rdf.graph import Graph
from repro.rdf.rdfs import RDFSClosure, SchemaView
from repro.rdf.sharding import ShardedGraph

__all__ = [
    "BNode",
    "IRI",
    "Literal",
    "Term",
    "Triple",
    "Namespace",
    "RDF",
    "RDFS",
    "XSD",
    "OWL",
    "EX",
    "Graph",
    "PassthroughDictionary",
    "RDFSClosure",
    "SchemaView",
    "ShardedGraph",
    "TermDictionary",
]
