"""RDFS inference and schema navigation.

:class:`RDFSClosure` materializes the RDFS entailments the dissertation
relies on (§2.1, §5.3.1):

* transitivity of ``rdfs:subClassOf`` and ``rdfs:subPropertyOf``;
* type propagation along ``rdfs:subClassOf``
  (``x rdf:type C``, ``C ⊑ D``  ⟹  ``x rdf:type D``);
* triple propagation along ``rdfs:subPropertyOf``
  (``x p y``, ``p ⊑ q``  ⟹  ``x q y``);
* domain/range typing (``x p y``, ``domain(p)=C``  ⟹  ``x rdf:type C``).

:class:`SchemaView` exposes the class/property hierarchies the faceted
interface needs: maximal (top-level) classes and properties, direct
sub/superclasses via the reflexive-transitive *reduction* (§5.3.2), the
properties applicable to a set of instances, and instance sets under
inference.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Set

from repro.rdf.graph import Graph
from repro.rdf.namespace import RDF, RDFS
from repro.rdf.terms import IRI, Literal, Term

_TYPE = RDF.type
_SUBCLASS = RDFS.subClassOf
_SUBPROP = RDFS.subPropertyOf
_DOMAIN = RDFS.domain
_RANGE = RDFS.range
_CLASS = RDFS.Class
_PROPERTY = RDF.Property


def _transitive_closure(edges: Dict[Term, Set[Term]]) -> Dict[Term, Set[Term]]:
    """All-pairs reachability, cycle-safe (iterates to a fixpoint)."""
    closure: Dict[Term, Set[Term]] = {
        node: set(successors) for node, successors in edges.items()
    }
    changed = True
    while changed:
        changed = False
        for node, reachable in closure.items():
            additions: Set[Term] = set()
            for succ in reachable:
                additions |= closure.get(succ, set())
            before = len(reachable)
            reachable |= additions
            if len(reachable) != before:
                changed = True
    return closure


class RDFSClosure:
    """The RDFS closure ``C(K)`` of a graph ``K`` (§5.3.1).

    The closure is computed eagerly at construction; :meth:`graph` returns
    a new :class:`Graph` containing the asserted plus the inferred triples.
    """

    def __init__(self, source: Graph):
        self.source = source
        self._subclass_of = self._edge_map(_SUBCLASS)
        self._subprop_of = self._edge_map(_SUBPROP)
        self.superclasses = _transitive_closure(self._subclass_of)
        self.superproperties = _transitive_closure(self._subprop_of)
        self._graph = self._materialize()

    def _edge_map(self, predicate: IRI) -> Dict[Term, Set[Term]]:
        edges: Dict[Term, Set[Term]] = defaultdict(set)
        for s, _, o in self.source.triples(None, predicate, None):
            if s != o:
                edges[s].add(o)
        return dict(edges)

    def _materialize(self) -> Graph:
        g = self.source.copy()
        # subClassOf / subPropertyOf transitivity
        for cls, supers in self.superclasses.items():
            for sup in supers:
                g.add(cls, _SUBCLASS, sup)
        for prop, supers in self.superproperties.items():
            for sup in supers:
                g.add(prop, _SUBPROP, sup)
        # subPropertyOf triple propagation (do this before domain/range and
        # type propagation so inherited statements are typed as well).
        for prop, supers in self.superproperties.items():
            if not supers:
                continue
            for s, _, o in list(g.triples(None, prop, None)):
                for sup in supers:
                    if isinstance(sup, IRI):
                        g.add(s, sup, o)
        # domain / range typing
        for prop, _, cls in list(g.triples(None, _DOMAIN, None)):
            if not isinstance(prop, IRI):
                continue
            for s, _, _o in list(g.triples(None, prop, None)):
                g.add(s, _TYPE, cls)
        for prop, _, cls in list(g.triples(None, _RANGE, None)):
            if not isinstance(prop, IRI):
                continue
            for _s, _, o in list(g.triples(None, prop, None)):
                if not isinstance(o, Literal):
                    g.add(o, _TYPE, cls)
        # rdf:type propagation along subClassOf
        for cls, supers in self.superclasses.items():
            if not supers:
                continue
            for inst in list(g.subjects(_TYPE, cls)):
                for sup in supers:
                    g.add(inst, _TYPE, sup)
        return g

    def graph(self) -> Graph:
        """The closed graph (asserted plus inferred triples)."""
        return self._graph


class SchemaView:
    """Schema navigation over a (closed) graph, as needed by faceted search.

    Provides the notation of §5.3.1: the set of classes ``C``, properties
    ``Pr``, relations ``≤cl`` and ``≤pr``, ``inst(c)`` and ``inst(p)``, the
    maximal elements, and the reflexive-transitive reduction used to lay
    out hierarchical facets.
    """

    def __init__(self, graph: Graph, closed: bool = False):
        """``graph`` is closed in place if ``closed`` is False."""
        if closed:
            self.graph = graph
        else:
            self.graph = RDFSClosure(graph).graph()

    # -- classes -------------------------------------------------------
    def classes(self) -> Set[Term]:
        """All classes: declared, used in typing, or in subclass axioms."""
        result: Set[Term] = set(self.graph.subjects(_TYPE, _CLASS))
        result.update(self.graph.objects(None, _TYPE))
        result.update(self.graph.subjects(_SUBCLASS, None))
        result.update(self.graph.objects(None, _SUBCLASS))
        result.discard(_CLASS)
        result.discard(_PROPERTY)
        return {c for c in result if isinstance(c, IRI)}

    def instances(self, cls: Term) -> Set[Term]:
        """``inst(c)`` under the closure."""
        return set(self.graph.subjects(_TYPE, cls))

    def subclasses(self, cls: Term, direct: bool = False) -> Set[Term]:
        subs = set(self.graph.subjects(_SUBCLASS, cls))
        subs.discard(cls)
        if direct:
            subs = self._reduce_down(cls, subs, _SUBCLASS)
        return subs

    def superclasses(self, cls: Term, direct: bool = False) -> Set[Term]:
        sups = set(self.graph.objects(cls, _SUBCLASS))
        sups.discard(cls)
        if direct:
            sups = self._reduce_up(cls, sups, _SUBCLASS)
        return sups

    def maximal_classes(self) -> List[Term]:
        """Top-level classes: those with no strict superclass (§5.3.2)."""
        return sorted(
            (c for c in self.classes() if not self.superclasses(c)),
            key=lambda t: t.sort_key(),
        )

    # -- properties ----------------------------------------------------
    def properties(self) -> Set[Term]:
        """All properties: declared, used, or in subproperty/domain/range axioms."""
        result: Set[Term] = set(self.graph.subjects(_TYPE, _PROPERTY))
        result.update(self.graph.subjects(_SUBPROP, None))
        result.update(self.graph.objects(None, _SUBPROP))
        result.update(self.graph.subjects(_DOMAIN, None))
        result.update(self.graph.subjects(_RANGE, None))
        schema_preds = {_TYPE, _SUBCLASS, _SUBPROP, _DOMAIN, _RANGE}
        result.update(
            p for p in self.graph.all_predicates() if p not in schema_preds
        )
        return {p for p in result if isinstance(p, IRI)}

    def property_instances(self, prop: Term) -> Set[tuple]:
        """``inst(p)`` = the (s, p, o) triples of ``p`` under the closure."""
        return set(self.graph.triples(None, prop, None))

    def subproperties(self, prop: Term, direct: bool = False) -> Set[Term]:
        subs = set(self.graph.subjects(_SUBPROP, prop))
        subs.discard(prop)
        if direct:
            subs = self._reduce_down(prop, subs, _SUBPROP)
        return subs

    def superproperties(self, prop: Term, direct: bool = False) -> Set[Term]:
        sups = set(self.graph.objects(prop, _SUBPROP))
        sups.discard(prop)
        if direct:
            sups = self._reduce_up(prop, sups, _SUBPROP)
        return sups

    def maximal_properties(self) -> List[Term]:
        """Top-level properties: those with no strict superproperty."""
        return sorted(
            (p for p in self.properties() if not self.superproperties(p)),
            key=lambda t: t.sort_key(),
        )

    def domain(self, prop: Term) -> Optional[Term]:
        return self.graph.value(prop, _DOMAIN, None)

    def range(self, prop: Term) -> Optional[Term]:
        return self.graph.value(prop, _RANGE, None)

    def properties_of(self, resources: Iterable[Term]) -> Set[Term]:
        """The properties for which at least one resource has a value."""
        result: Set[Term] = set()
        schema_preds = {_TYPE, _SUBCLASS, _SUBPROP, _DOMAIN, _RANGE}
        for r in resources:
            for p in self.graph.predicates(r, None):
                if p not in schema_preds:
                    result.add(p)
        return result

    # -- hierarchy reduction -------------------------------------------
    def _reduce_down(self, top: Term, subs: Set[Term], pred: IRI) -> Set[Term]:
        """Direct children: drop any sub that is below another sub."""
        direct = set(subs)
        for a in subs:
            ancestors = set(self.graph.objects(a, pred))
            ancestors.discard(a)
            ancestors.discard(top)
            if ancestors & subs:
                direct.discard(a)
        return direct

    def _reduce_up(self, bottom: Term, sups: Set[Term], pred: IRI) -> Set[Term]:
        """Direct parents: drop any sup that is above another sup."""
        direct = set(sups)
        for a in sups:
            descendants = set(self.graph.subjects(pred, a))
            descendants.discard(a)
            descendants.discard(bottom)
            if descendants & sups:
                direct.discard(a)
        return direct

    def class_tree(self, roots: Optional[Iterable[Term]] = None) -> Dict[Term, List[Term]]:
        """Adjacency of the subclass hierarchy's reflexive-transitive
        reduction, keyed by parent, children sorted deterministically."""
        if roots is None:
            roots = self.maximal_classes()
        tree: Dict[Term, List[Term]] = {}
        stack = list(roots)
        while stack:
            node = stack.pop()
            if node in tree:
                continue
            children = sorted(
                self.subclasses(node, direct=True), key=lambda t: t.sort_key()
            )
            tree[node] = children
            stack.extend(children)
        return tree
