"""N-Triples parser and serializer.

N-Triples is the line-oriented subset of Turtle: one triple per line,
absolute IRIs only.  The parser accepts the full N-Triples grammar for
the term kinds this library models (IRIs, blank nodes, literals with
datatype or language tag).
"""

from __future__ import annotations

import re
from typing import Callable, Iterable, Iterator, Optional, Tuple

from repro.rdf.graph import Graph
from repro.rdf.terms import BNode, IRI, Literal, Triple, XSD_STRING


class NTriplesError(ValueError):
    """Raised when a line cannot be parsed as an N-Triples statement."""


_IRI_RE = r"<([^<>\"{}|^`\\\x00-\x20]*)>"
_BNODE_RE = r"_:([A-Za-z0-9_.]+)"
_LITERAL_RE = r'"((?:[^"\\]|\\.)*)"(?:\^\^<([^<>]*)>|@([A-Za-z0-9-]+))?'
_TERM_RE = f"(?:{_IRI_RE}|{_BNODE_RE}|{_LITERAL_RE})"
_LINE_RE = re.compile(
    rf"^\s*{_TERM_RE}\s+{_TERM_RE}\s+{_TERM_RE}\s*\.\s*(?:#.*)?$"
)

_UNESCAPES = {
    "\\\\": "\\",
    '\\"': '"',
    "\\n": "\n",
    "\\r": "\r",
    "\\t": "\t",
}
_UNESCAPE_RE = re.compile(r'\\[\\"nrt]|\\u[0-9A-Fa-f]{4}|\\U[0-9A-Fa-f]{8}')


def _unescape(text: str) -> str:
    def repl(m: re.Match) -> str:
        token = m.group(0)
        if token in _UNESCAPES:
            return _UNESCAPES[token]
        return chr(int(token[2:], 16))

    return _UNESCAPE_RE.sub(repl, text)


def _term_from_groups(groups, offset):
    iri, bnode, lex, datatype, lang = groups[offset : offset + 5]
    if iri is not None:
        return IRI(iri)
    if bnode is not None:
        return BNode(bnode)
    if lex is None:
        return None
    lexical = _unescape(lex)
    if lang:
        return Literal(lexical, XSD_STRING, lang)
    return Literal(lexical, datatype or XSD_STRING)


def parse_line(line: str) -> Triple:
    """Parse one N-Triples statement line into a triple."""
    match = _LINE_RE.match(line)
    if match is None:
        raise NTriplesError(f"not an N-Triples statement: {line!r}")
    groups = match.groups()
    s = _term_from_groups(groups, 0)
    p = _term_from_groups(groups, 5)
    o = _term_from_groups(groups, 10)
    if not isinstance(p, IRI):
        raise NTriplesError(f"predicate must be an IRI: {line!r}")
    if isinstance(s, Literal):
        raise NTriplesError(f"subject cannot be a literal: {line!r}")
    return (s, p, o)


def parse_lines(lines: Iterable[str], strict: bool = True,
                on_skip: Optional[Callable[[int, str], None]] = None,
                ) -> Iterator[Tuple[int, Triple]]:
    """Stream ``(line_number, triple)`` pairs from an iterable of lines.

    The streaming core shared by :func:`parse` and the bulk loader
    (:mod:`repro.rdf.bulkload`): it consumes any line iterable — an
    open file handle included — one line at a time, so a document never
    needs to be materialized in memory.  Line numbers are 1-based and
    count *every* input line (blank and comment lines too), so a
    reported position matches the file.

    ``strict=True`` (the default) re-raises the first malformed line as
    an :class:`NTriplesError` carrying the line number; ``strict=False``
    skips malformed lines, reporting each to ``on_skip(line_no,
    message)`` when given.
    """
    for line_no, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        try:
            yield line_no, parse_line(line)
        except NTriplesError as exc:
            if strict:
                raise NTriplesError(f"line {line_no}: {exc}") from exc
            if on_skip is not None:
                on_skip(line_no, str(exc))


def parse(text: str) -> Iterator[Triple]:
    """Parse an N-Triples document, yielding triples."""
    for _, parsed in parse_lines(text.splitlines()):
        yield parsed


def parse_into(text: str, graph: Graph = None) -> Graph:
    """Parse an N-Triples document into ``graph`` (a new one by default)."""
    if graph is None:
        graph = Graph()
    graph.add_all(parse(text))
    return graph


def serialize(triples: Iterable[Triple]) -> str:
    """Serialize triples as canonical (sorted) N-Triples text."""
    lines = sorted(
        f"{s.n3()} {p.n3()} {o.n3()} ." for s, p, o in triples
    )
    return "\n".join(lines) + ("\n" if lines else "")
