"""Streaming bulk loading of serialized RDF into (sharded) stores.

The scale-out data plane needs to *get* to millions of triples before
it can scan them, and reading a whole serialization into one string —
then a whole triple list — before the first ``add`` doubles or triples
peak memory for no benefit.  This module feeds a store directly from
the input stream:

* **N-Triples** is line-oriented, so :func:`load_ntriples` iterates the
  open file handle and adds each statement as it parses — the only
  buffered state is one line.  Malformed lines are reported with their
  1-based line number; ``strict=False`` skips them (collecting the
  skips in the :class:`LoadReport`) instead of raising.
* **Turtle** has document-level state (prefixes, multi-statement
  grammar), so :func:`load_turtle` holds the document *text* but still
  adds triples into the target graph as the parser emits them — no
  intermediate triple list or second graph is ever built.

Every loader takes an optional target ``graph``; by default it builds a
:class:`~repro.rdf.sharding.ShardedGraph` when ``shards > 1`` and a
plain :class:`~repro.rdf.graph.Graph` otherwise, so bulk load feeds the
partitioned store directly — triples route to their owning shard at
add time, never touching a flat intermediate.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import IO, Iterable, List, Optional, Tuple, Union

from repro.rdf.graph import Graph
from repro.rdf.ntriples import NTriplesError, parse_lines
from repro.rdf.sharding import ShardedGraph

#: File suffixes understood by :func:`load_file`.
_NTRIPLES_SUFFIXES = (".nt", ".ntriples")
_TURTLE_SUFFIXES = (".ttl", ".turtle")


class BulkLoadError(ValueError):
    """Raised on unloadable input (bad syntax in strict mode, unknown
    format); carries the 1-based ``line`` when one is known."""

    def __init__(self, message: str, line: Optional[int] = None):
        super().__init__(message)
        self.line = line


@dataclass
class LoadReport:
    """What one bulk load did: statements seen, triples added (duplicate
    statements add nothing), and the malformed lines skipped in
    non-strict mode as ``(line_number, message)`` pairs."""

    statements: int = 0
    triples_added: int = 0
    skipped: List[Tuple[int, str]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.skipped

    def __repr__(self):
        return (f"<LoadReport {self.statements} statements, "
                f"{self.triples_added} added, {len(self.skipped)} skipped>")


def _target_graph(graph: Optional[Graph], shards: int) -> Graph:
    if graph is not None:
        return graph
    if shards > 1:
        return ShardedGraph(shards=shards)
    return Graph()


def load_ntriples(
    source: Union[str, os.PathLike, IO[str], Iterable[str]],
    graph: Optional[Graph] = None,
    strict: bool = True,
    shards: int = 1,
) -> Tuple[Graph, LoadReport]:
    """Stream an N-Triples document into a store, line by line.

    ``source`` is a file path, an open text handle, or any iterable of
    lines.  Returns ``(graph, report)``.  In strict mode the first
    malformed line raises :class:`BulkLoadError` with its line number
    (the graph keeps the statements already added — bulk load is not
    transactional); otherwise malformed lines are skipped and recorded.
    """
    target = _target_graph(graph, shards)
    report = LoadReport()
    own_handle = isinstance(source, (str, os.PathLike))
    handle: Iterable[str] = (
        open(source, "r", encoding="utf-8") if own_handle else source)
    try:
        add = target.add
        stream = parse_lines(
            handle, strict=strict,
            on_skip=lambda line_no, message:
                report.skipped.append((line_no, message)),
        )
        try:
            for _, (s, p, o) in stream:
                report.statements += 1
                if add(s, p, o):
                    report.triples_added += 1
        except NTriplesError as exc:
            line = getattr(exc.__cause__, "line", None)
            # parse_lines prefixes "line N:" — recover N for the report.
            text = str(exc)
            if line is None and text.startswith("line "):
                try:
                    line = int(text[5:].split(":", 1)[0])
                except ValueError:
                    line = None
            raise BulkLoadError(text, line=line) from exc
    finally:
        if own_handle:
            handle.close()
    return target, report


def load_turtle(
    source: Union[str, os.PathLike],
    graph: Optional[Graph] = None,
    shards: int = 1,
) -> Tuple[Graph, LoadReport]:
    """Load a Turtle document into a store.

    Turtle's grammar is document-scoped (prefix directives, ``;``/``,``
    continuation), so the text is read whole — but the parser adds each
    triple straight into the target graph, so no intermediate triple
    collection or staging graph exists, and a sharded target receives
    its triples pre-routed.
    """
    from repro.rdf.turtle import parse_file

    target = _target_graph(graph, shards)
    before = len(target)
    parse_file(os.fspath(source), graph=target)
    report = LoadReport()
    report.triples_added = len(target) - before
    report.statements = report.triples_added
    return target, report


def load_file(
    path: Union[str, os.PathLike],
    graph: Optional[Graph] = None,
    strict: bool = True,
    shards: int = 1,
) -> Tuple[Graph, LoadReport]:
    """Load a file by suffix: ``.nt`` streams, ``.ttl`` parses whole."""
    name = os.fspath(path).lower()
    if name.endswith(_NTRIPLES_SUFFIXES):
        return load_ntriples(path, graph=graph, strict=strict, shards=shards)
    if name.endswith(_TURTLE_SUFFIXES):
        return load_turtle(path, graph=graph, shards=shards)
    raise BulkLoadError(
        f"cannot infer RDF format from {name!r} "
        f"(expected one of {_NTRIPLES_SUFFIXES + _TURTLE_SUFFIXES})")


__all__ = [
    "BulkLoadError",
    "LoadReport",
    "load_file",
    "load_ntriples",
    "load_turtle",
]
