"""RDF term model: IRIs, blank nodes and typed literals.

The three term kinds mirror the RDF 1.1 abstract syntax.  All terms are
immutable, hashable and totally ordered (IRIs < blank nodes < literals),
which lets them be used as dictionary keys, set members and sort keys
throughout the engine.

Literals carry an optional datatype IRI and an optional language tag, and
expose :meth:`Literal.to_python` which maps the common XSD datatypes onto
native Python values (int, float, Decimal, bool, date, datetime).  Numeric
and temporal comparisons in SPARQL FILTERs and HIFUN restrictions are
performed on those native values.
"""

from __future__ import annotations

import datetime as _dt
import re
from dataclasses import dataclass
from decimal import Decimal, InvalidOperation
from typing import Union

_XSD = "http://www.w3.org/2001/XMLSchema#"

XSD_STRING = _XSD + "string"
XSD_INTEGER = _XSD + "integer"
XSD_DECIMAL = _XSD + "decimal"
XSD_DOUBLE = _XSD + "double"
XSD_FLOAT = _XSD + "float"
XSD_BOOLEAN = _XSD + "boolean"
XSD_DATE = _XSD + "date"
XSD_DATETIME = _XSD + "dateTime"
XSD_GYEAR = _XSD + "gYear"

_NUMERIC_DATATYPES = frozenset(
    {XSD_INTEGER, XSD_DECIMAL, XSD_DOUBLE, XSD_FLOAT}
)
_TEMPORAL_DATATYPES = frozenset({XSD_DATE, XSD_DATETIME, XSD_GYEAR})

#: Public aliases used by the static analyzers (repro.analysis).
NUMERIC_DATATYPES = _NUMERIC_DATATYPES
TEMPORAL_DATATYPES = _TEMPORAL_DATATYPES


class Term:
    """Base class for all RDF terms.  Only its subclasses are instantiated."""

    __slots__ = ()

    #: Sort rank used for the total order across term kinds.
    _rank = 0

    def sort_key(self):
        """Key tuple giving a deterministic total order over mixed terms."""
        raise NotImplementedError


@dataclass(frozen=True, order=False)
class IRI(Term):
    """An IRI reference, e.g. ``IRI("http://example.org/Laptop")``."""

    value: str
    _rank = 0

    def __str__(self):
        return self.value

    def __repr__(self):
        return f"<{self.value}>"

    def n3(self):
        """N-Triples / Turtle serialization of this IRI."""
        return f"<{self.value}>"

    def local_name(self):
        """The fragment after the last ``#`` or ``/`` — used for display."""
        for sep in ("#", "/"):
            if sep in self.value:
                return self.value.rsplit(sep, 1)[1]
        return self.value

    def sort_key(self):
        return (self._rank, self.value)

    def __lt__(self, other):
        return _term_lt(self, other)


@dataclass(frozen=True, order=False)
class BNode(Term):
    """A blank node with a local label, e.g. ``BNode("b0")``."""

    label: str
    _rank = 1

    def __str__(self):
        return f"_:{self.label}"

    def __repr__(self):
        return f"_:{self.label}"

    def n3(self):
        return f"_:{self.label}"

    def sort_key(self):
        return (self._rank, self.label)

    def __lt__(self, other):
        return _term_lt(self, other)


@dataclass(frozen=True, order=False)
class Literal(Term):
    """A literal with lexical form, optional datatype IRI and language tag.

    ``Literal.of`` is the preferred constructor: it infers the datatype from
    a native Python value, so ``Literal.of(3)`` is an ``xsd:integer`` and
    ``Literal.of(datetime.date(2021, 6, 10))`` is an ``xsd:date``.
    """

    lexical: str
    datatype: str = XSD_STRING
    language: str = ""
    _rank = 2

    @staticmethod
    def of(value: Union[str, int, float, bool, Decimal, _dt.date, _dt.datetime]) -> "Literal":
        """Build a literal from a native Python value, inferring the datatype."""
        if isinstance(value, bool):
            return Literal("true" if value else "false", XSD_BOOLEAN)
        if isinstance(value, int):
            return Literal(str(value), XSD_INTEGER)
        if isinstance(value, float):
            return Literal(repr(value), XSD_DOUBLE)
        if isinstance(value, Decimal):
            return Literal(str(value), XSD_DECIMAL)
        if isinstance(value, _dt.datetime):
            return Literal(value.isoformat(), XSD_DATETIME)
        if isinstance(value, _dt.date):
            return Literal(value.isoformat(), XSD_DATE)
        if isinstance(value, str):
            return Literal(value, XSD_STRING)
        raise TypeError(f"cannot build a Literal from {type(value).__name__}")

    def is_numeric(self):
        return self.datatype in _NUMERIC_DATATYPES

    def is_temporal(self):
        return self.datatype in _TEMPORAL_DATATYPES

    def to_python(self):
        """The native Python value of this literal.

        Falls back to the lexical form for unknown datatypes or malformed
        lexical values — errors never propagate out of value conversion,
        mirroring SPARQL's lenient treatment of ill-typed literals.
        """
        try:
            if self.datatype == XSD_INTEGER:
                return int(self.lexical)
            if self.datatype == XSD_DECIMAL:
                return Decimal(self.lexical)
            if self.datatype in (XSD_DOUBLE, XSD_FLOAT):
                return float(self.lexical)
            if self.datatype == XSD_BOOLEAN:
                return self.lexical.strip().lower() in ("true", "1")
            if self.datatype == XSD_DATE:
                return _dt.date.fromisoformat(self.lexical)
            if self.datatype == XSD_DATETIME:
                return _dt.datetime.fromisoformat(self.lexical.replace("Z", "+00:00"))
            if self.datatype == XSD_GYEAR:
                return int(self.lexical)
        except (ValueError, InvalidOperation):
            pass
        return self.lexical

    def __str__(self):
        return self.lexical

    def __repr__(self):
        return self.n3()

    def n3(self):
        escaped = _escape(self.lexical)
        if self.language:
            return f'"{escaped}"@{self.language}'
        if self.datatype and self.datatype != XSD_STRING:
            return f'"{escaped}"^^<{self.datatype}>'
        return f'"{escaped}"'

    def sort_key(self):
        # Order literals numerically when possible so facet values display
        # in natural order; mixed-type comparisons fall back to lexical.
        value = self.to_python()
        if isinstance(value, bool):
            return (self._rank, 0, "", int(value), "")
        if isinstance(value, (int, float, Decimal)):
            return (self._rank, 0, "", float(value), "")
        if isinstance(value, (_dt.date, _dt.datetime)):
            return (self._rank, 1, value.isoformat(), 0.0, "")
        return (self._rank, 2, self.lexical, 0.0, self.language)

    def __lt__(self, other):
        return _term_lt(self, other)


#: A subject–predicate–object statement.
Triple = tuple


def triple(s: Term, p: Term, o: Term) -> Triple:
    """Build a triple after validating the slot types (RDF 1.1 rules)."""
    if not isinstance(s, (IRI, BNode)):
        raise TypeError(f"triple subject must be an IRI or BNode, got {s!r}")
    if not isinstance(p, IRI):
        raise TypeError(f"triple predicate must be an IRI, got {p!r}")
    if not isinstance(o, (IRI, BNode, Literal)):
        raise TypeError(f"triple object must be an RDF term, got {o!r}")
    return (s, p, o)


_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n", "\r": "\\r", "\t": "\\t"}
_ESCAPE_RE = re.compile(r'[\\"\n\r\t]')


def _escape(text: str) -> str:
    return _ESCAPE_RE.sub(lambda m: _ESCAPES[m.group(0)], text)


def _term_lt(a: Term, b: Term) -> bool:
    if not isinstance(b, Term):
        return NotImplemented
    ka, kb = a.sort_key(), b.sort_key()
    if ka[0] != kb[0]:
        return ka[0] < kb[0]
    # Same kind: compare the remaining key components pairwise; they are
    # homogeneous within a kind except Literal, whose key is padded.
    return ka[1:] < kb[1:]
