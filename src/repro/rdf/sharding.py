"""A hash-partitioned, fan-out-capable twin of the dictionary store.

:class:`ShardedGraph` keeps the exact public surface of
:class:`~repro.rdf.graph.Graph` but splits the three permutation
indexes into N independent :class:`GraphShard` slices, partitioned by
**subject id**: triple ``(si, pi, oi)`` lives in shard ``si %
num_shards`` and nowhere else.  Because the partition key is the
subject, the shards partition the *subjects* of the graph:

* ``spo`` rows route — one dictionary probe finds the one owning shard;
* ``pos`` / ``osp`` rows split — a predicate's (or object's) row is the
  disjoint union of the per-shard rows, so merged counts are sums and
  merged maps need no de-duplication of subject keys (objects, which
  may appear in several shards, are the one exception — their unions
  de-duplicate);
* per-shard predicate statistics roll up by addition into the same
  O(1) global stats API (`count`, `predicate_counts`) the planner
  already uses, mirroring the per-partition statistics argument of
  SOFOS.

The split buys two things.  First, every whole-index scan — the
shared-scan facet counter, the columnar engine's successor probes —
decomposes into N independent shard kernels whose results merge
cheaply; :class:`ShardExecutor` fans those kernels out over a
``concurrent.futures`` process pool on multi-core hosts (fork start
method, the graph reaching workers by copy-on-write page sharing, id
columns crossing the boundary as compact ``array('q')`` buffers) and
degrades to an in-process sequential loop everywhere else.  Second —
and on single-core hosts the part that actually pays — the sharded
session protocol keeps the *extension in id space* between scans (the
per-generation partition is what the kernels consume), eliminating the
term→id re-encode that dominates the flat store's shared scan at the
million-triple scale (see ``benchmarks/bench_ablation_sharding.py``).

Equivalence is a hard contract: every accessor, every kernel and every
merge must return byte-identical results to the flat store — the
equivalence suites run the full query/facet workload at shard counts
1/2/4/7 against the row engine to pin it.

The sequential fallback triggers when any of these holds:

* ``REPRO_PARALLEL=sequential`` (the environment override);
* the host has fewer than two CPU cores, or no ``fork`` start method;
* the graph is small (< :data:`PARALLEL_MIN_TRIPLES` triples) —
  process startup would dwarf the scan;
* the store is not dictionary-encoded (``Graph(encoded=False)`` keeps
  its current fast path; a sharded store requires encoding).
"""

from __future__ import annotations

import os
from array import array
from typing import (
    AbstractSet,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.rdf.dictionary import PassthroughDictionary
from repro.rdf.graph import (
    EMPTY_IDS,
    Graph,
    _index_add,
    _index_remove,
    _match_pattern,
)
from repro.rdf.terms import Term, Triple, triple

#: Environment override for the fan-out strategy: ``auto`` (default),
#: ``sequential`` (never fork) or ``process`` (always fork — tests use
#: it to exercise the pool on any host).
PARALLEL_ENV = "REPRO_PARALLEL"

#: Below this many triples, ``auto`` mode never forks: pool startup and
#: result pickling would cost more than the scan itself.
PARALLEL_MIN_TRIPLES = 100_000

#: The graph a forked worker operates on, inherited from the parent via
#: copy-on-write at pool creation (set *before* the fork, read-only in
#: the children; a generation change makes the parent rebuild the pool).
_WORKER_GRAPH: Optional["ShardedGraph"] = None


def shard_of(si: int, num_shards: int) -> int:
    """The shard owning subject id ``si``.

    Dense dictionary ids make the modulo a uniform partitioner — no
    hashing needed on top of the dictionary's own interning.
    """
    return si % num_shards


class GraphShard:
    """One partition's index slice: SPO/POS/OSP maps plus local stats."""

    __slots__ = ("spo", "pos", "osp", "pred_count", "size")

    def __init__(self):
        self.spo: Dict[int, Dict[int, Set[int]]] = {}
        self.pos: Dict[int, Dict[int, Set[int]]] = {}
        self.osp: Dict[int, Dict[int, Set[int]]] = {}
        #: Per-predicate triple count *within this shard*; the global
        #: statistics are the roll-up (sum) of these.
        self.pred_count: Dict[int, int] = {}
        self.size = 0

    def __repr__(self):
        return f"<GraphShard with {self.size} triples>"


class ShardedGraph(Graph):
    """A :class:`Graph` hash-partitioned by subject id into N shards.

    Drop-in compatible: every accessor answers over the union of the
    shards (routing where the subject is bound, merging otherwise), all
    mutation maintains both the owning shard's slice and the global
    roll-up stats, and derived graphs (``copy``, ``difference``, the
    RDFS closure's materialization) preserve the shard count.
    """

    def __init__(self, triples: Optional[Iterable[Triple]] = None,
                 encoded: bool = True, shards: int = 4):
        if not encoded:
            raise ValueError(
                "a sharded store requires dictionary encoding; "
                "Graph(encoded=False) is the unsharded ablation layout")
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.num_shards = shards
        self._shards = [GraphShard() for _ in range(shards)]
        self._executor: Optional[ShardExecutor] = None
        super().__init__(triples, encoded=True)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, source: Graph, shards: int = 4) -> "ShardedGraph":
        """Repartition an existing store into ``shards`` shards.

        For an encoded source this works entirely in id space: the term
        dictionary is cloned (same term ↔ id assignments, so every
        derived id set stays valid) and the index slices are rebuilt by
        routing each SPO row to its owning shard — no term decode or
        re-intern happens.
        """
        out = cls(encoded=True, shards=shards)
        if isinstance(source._dict, PassthroughDictionary):
            out.add_all(source.triples())
            return out
        out._dict = source.dictionary.clone()
        n = shards
        pick = out._shards
        for si in source.all_subject_ids():
            shard = pick[si % n]
            spo, pos, osp = shard.spo, shard.pos, shard.osp
            pred_count = shard.pred_count
            for pi, objects in source.spo_ids(si).items():
                for oi in objects:
                    _index_add(spo, pos, osp, si, pi, oi)
                added = len(objects)
                pred_count[pi] = pred_count.get(pi, 0) + added
                out._pred_count[pi] = out._pred_count.get(pi, 0) + added
                shard.size += added
                out._size += added
        out._bnode_counter = source._bnode_counter
        out.generation = 1 if out._size else 0
        return out

    def _new_like(self, triples: Optional[Iterable[Triple]] = None) -> "ShardedGraph":
        return ShardedGraph(triples, encoded=True, shards=self.num_shards)

    @property
    def shards(self) -> Tuple[GraphShard, ...]:
        """The partition slices (read-only view; kernels index them)."""
        return tuple(self._shards)

    def shard_sizes(self) -> List[int]:
        """Per-shard triple counts — the balance diagnostic."""
        return [shard.size for shard in self._shards]

    # ------------------------------------------------------------------
    # Mutation (route to the owning shard, maintain the roll-up)
    # ------------------------------------------------------------------
    def add(self, s: Term, p: Term, o: Term) -> bool:
        s, p, o = triple(s, p, o)
        encode = self._dict.encode
        si, pi, oi = encode(s), encode(p), encode(o)
        shard = self._shards[si % self.num_shards]
        if not _index_add(shard.spo, shard.pos, shard.osp, si, pi, oi):
            return False
        shard.size += 1
        shard.pred_count[pi] = shard.pred_count.get(pi, 0) + 1
        self._size += 1
        self._pred_count[pi] = self._pred_count.get(pi, 0) + 1
        self.generation += 1
        return True

    def remove(self, s: Term, p: Term, o: Term) -> bool:
        lookup = self._dict.lookup
        si, pi, oi = lookup(s), lookup(p), lookup(o)
        if si is None or pi is None or oi is None:
            return False
        shard = self._shards[si % self.num_shards]
        if not _index_remove(shard.spo, shard.pos, shard.osp, si, pi, oi):
            return False
        shard.size -= 1
        remaining = shard.pred_count[pi] - 1
        if remaining:
            shard.pred_count[pi] = remaining
        else:
            # Pruned eagerly, exactly like the index slots: add → remove
            # round trips (the temp-class device) leave per-shard stats
            # byte-identical to never having added.
            del shard.pred_count[pi]
        self._size -= 1
        remaining = self._pred_count[pi] - 1
        if remaining:
            self._pred_count[pi] = remaining
        else:
            del self._pred_count[pi]
        self.generation += 1
        return True

    # ------------------------------------------------------------------
    # Id-level accessors: route on bound subject, merge otherwise
    # ------------------------------------------------------------------
    def objects_ids(self, si, pi):
        po = self._shards[si % self.num_shards].spo.get(si)
        if po is None:
            return EMPTY_IDS
        return po.get(pi, EMPTY_IDS)

    def spo_ids(self, si) -> Dict[int, Set[int]]:
        return self._shards[si % self.num_shards].spo.get(si) or {}

    def subjects_ids(self, pi, oi):
        """Merged ``{s | (s, p, o)}`` — per-shard rows are disjoint, so
        the union never de-duplicates; single-populated rows return the
        live set without copying."""
        found = None
        merged = None
        for shard in self._shards:
            os_ = shard.pos.get(pi)
            if os_ is None:
                continue
            subjects = os_.get(oi)
            if not subjects:
                continue
            if found is None:
                found = subjects
            elif merged is None:
                merged = set(found)
                merged |= subjects
            else:
                merged |= subjects
        if merged is not None:
            return merged
        return found if found is not None else EMPTY_IDS

    def pos_ids(self, pi) -> Dict[int, Set[int]]:
        """Merged object → subject-ids row of one predicate.

        Subject sets from different shards are disjoint, so the merge is
        pure set union without overcounting; when only one shard holds
        the predicate the live row is returned uncopied.
        """
        rows = [shard.pos[pi] for shard in self._shards if pi in shard.pos]
        if not rows:
            return {}
        if len(rows) == 1:
            return rows[0]
        merged: Dict[int, Set[int]] = {}
        for row in rows:
            for oi, subjects in row.items():
                existing = merged.get(oi)
                if existing is None:
                    merged[oi] = set(subjects)
                else:
                    existing |= subjects
        return merged

    def osp_ids(self, oi) -> Dict[int, Set[int]]:
        """Merged subject → predicate-ids row of one object.  Subject
        keys are disjoint across shards: a plain dict update merges."""
        rows = [shard.osp[oi] for shard in self._shards if oi in shard.osp]
        if not rows:
            return {}
        if len(rows) == 1:
            return rows[0]
        merged: Dict[int, Set[int]] = {}
        for row in rows:
            merged.update(row)
        return merged

    # ------------------------------------------------------------------
    # Pattern matching / membership
    # ------------------------------------------------------------------
    def triples(self, s=None, p=None, o=None) -> Iterator[Triple]:
        lookup = self._dict.lookup
        decode = self._dict.decode
        if s is not None:
            si = lookup(s)
            if si is None:
                return iter(())
            shard = self._shards[si % self.num_shards]
            return _match_pattern(
                lookup, decode, shard.spo, shard.pos, shard.osp, s, p, o)

        def _chained():
            for shard in self._shards:
                yield from _match_pattern(
                    lookup, decode, shard.spo, shard.pos, shard.osp, s, p, o)

        return _chained()

    def __contains__(self, t: Triple) -> bool:
        s, p, o = t
        lookup = self._dict.lookup
        si, pi, oi = lookup(s), lookup(p), lookup(o)
        if si is None or pi is None or oi is None:
            return False
        po = self._shards[si % self.num_shards].spo.get(si)
        if po is None:
            return False
        return oi in po.get(pi, EMPTY_IDS)

    # ------------------------------------------------------------------
    # Whole-graph views
    # ------------------------------------------------------------------
    def all_subjects(self) -> Set[Term]:
        return self._dict.decode_all(self.all_subject_ids())

    def all_subject_ids(self):
        """All encoded subject ids (disjoint concatenation of the shard
        key views — a fresh list, unlike the flat store's live view)."""
        out: List[int] = []
        for shard in self._shards:
            out.extend(shard.spo.keys())
        return out

    def all_predicates(self) -> Set[Term]:
        return self._dict.decode_all(self._pred_count.keys())

    def all_predicate_ids(self):
        """The roll-up statistics' key view — maintained incrementally,
        so no shard merge is needed."""
        return self._pred_count.keys()

    def all_objects(self) -> Set[Term]:
        ids: Set[int] = set()
        for shard in self._shards:
            ids.update(shard.osp.keys())
        return self._dict.decode_all(ids)

    # ------------------------------------------------------------------
    # Fan-out execution
    # ------------------------------------------------------------------
    def executor(self) -> "ShardExecutor":
        """The (lazily created) fan-out executor for this graph."""
        if self._executor is None:
            self._executor = ShardExecutor(self)
        return self._executor

    def close(self) -> None:
        """Shut down the process pool, if one was ever started."""
        if self._executor is not None:
            self._executor.close()

    def facet_counts(
        self,
        ext_ids: Set[int],
        schema_ids: Set[int],
        include_inverse: bool = False,
    ) -> Tuple[Dict[Tuple[int, bool], Dict[int, int]], Dict[Tuple[int, bool], int]]:
        """The shared-scan facet counters of ``all_facets``, fanned out.

        ``ext_ids`` is the literal-filtered, id-space extension.  Returns
        the exact ``(counters, having)`` structures the flat store's
        inline scan builds: forward counters merge by summation (shard
        subject sets are disjoint), inverse counters merge by dict union
        (subject keys are disjoint) and inverse *having* counts
        de-duplicate matched object ids across shards before counting.
        """
        executor = self.executor()
        if executor.active():
            blob = array("q", ext_ids)
            parts = executor.map_shards(
                _facet_kernel, blob, schema_ids, include_inverse)
        else:
            parts = [
                _facet_shard_scan(shard, ext_ids, schema_ids, include_inverse)
                for shard in self._shards
            ]
        counters: Dict[Tuple[int, bool], Dict[int, int]] = {}
        having: Dict[Tuple[int, bool], int] = {}
        inverse_matched: Dict[Tuple[int, bool], Set[int]] = {}
        for part_counters, part_having, part_matched in parts:
            for slot, counter in part_counters.items():
                target = counters.get(slot)
                if target is None:
                    counters[slot] = dict(counter)
                elif slot[1]:
                    target.update(counter)
                else:
                    for vid, n in counter.items():
                        target[vid] = target.get(vid, 0) + n
            for slot, n in part_having.items():
                having[slot] = having.get(slot, 0) + n
            for slot, matched in part_matched.items():
                bucket = inverse_matched.get(slot)
                if bucket is None:
                    inverse_matched[slot] = set(matched)
                else:
                    bucket |= matched
        for slot, matched in inverse_matched.items():
            having[slot] = len(matched)
        return counters, having

    def prefetch_successors(self, node_ids: Iterable[int], prop_id: int,
                            inverse: bool,
                            sort_key: Callable[[int], tuple],
                            ) -> Dict[int, Tuple[int, ...]]:
        """Batch-compute successor memo entries for a frontier, fanned
        out across shards.  Returns ``{}`` in sequential mode — the
        caller's per-node path is then exactly as cheap.

        Forward steps route each node to its owning shard, whose kernel
        returns the finished sort-ordered tuples; inverse steps return
        per-shard partial subject sets that merge (disjointly) here and
        are sorted once.  Either way the memo entries are byte-identical
        to what :meth:`ColumnEngine.successors` computes one by one.
        """
        executor = self.executor()
        if not executor.active():
            return {}
        if not inverse:
            n = self.num_shards
            by_shard: List[array] = [array("q") for _ in range(n)]
            for node in node_ids:
                by_shard[node % n].append(node)
            parts = executor.map_shards_args(
                _successor_kernel,
                [(blob, prop_id) for blob in by_shard],
            )
            merged: Dict[int, Tuple[int, ...]] = {}
            for part in parts:
                merged.update(part)
            return merged
        blob = array("q", node_ids)
        parts = executor.map_shards(_inverse_successor_kernel, blob, prop_id)
        partial: Dict[int, Set[int]] = {}
        for part in parts:
            for node, subjects in part.items():
                bucket = partial.get(node)
                if bucket is None:
                    partial[node] = set(subjects)
                else:
                    bucket |= subjects
        out: Dict[int, Tuple[int, ...]] = {node: () for node in node_ids}
        for node, subjects in partial.items():
            out[node] = tuple(sorted(subjects, key=sort_key))
        return out

    def __repr__(self):
        return (f"<ShardedGraph with {self._size} triples "
                f"in {self.num_shards} shards>")


# ---------------------------------------------------------------------------
# Shard kernels.  Each runs against ONE shard slice — in-process on the
# sequential path, in a forked worker (reading the copy-on-write
# inherited _WORKER_GRAPH) on the parallel path.
# ---------------------------------------------------------------------------
#: One shard's facet-scan result: per-(property, inverse) value
#: counters, forward "having" counts, and inverse matched object-id
#: sets (deduplicated across shards by the caller before counting).
FacetScan = Tuple[
    Dict[Tuple[int, bool], Dict[int, int]],
    Dict[Tuple[int, bool], int],
    Dict[Tuple[int, bool], Set[int]],
]


def _facet_shard_scan(shard: GraphShard, ext_set: AbstractSet[int],
                      schema_ids: AbstractSet[int],
                      include_inverse: bool) -> FacetScan:
    """One shard's share of the property-major facet scan.

    Mirrors the flat store's inline loop in
    ``FacetedSession.all_facets`` exactly, except that inverse *having*
    is returned as the matched object-id set (objects may recur in
    other shards; the caller de-duplicates before counting).
    """
    counters: Dict[Tuple[int, bool], Dict[int, int]] = {}
    having: Dict[Tuple[int, bool], int] = {}
    inverse_matched: Dict[Tuple[int, bool], Set[int]] = {}
    for pid, rows in shard.pos.items():
        if pid in schema_ids:
            continue
        counter: Dict[int, int] = {}
        havers: Set[int] = set()
        for value_id, subjects in rows.items():
            members = ext_set & subjects
            if members:
                counter[value_id] = len(members)
                havers |= members
        if counter:
            counters[(pid, False)] = counter
            having[(pid, False)] = len(havers)
        if include_inverse:
            counter = {}
            matched: Set[int] = set()
            for value_id, subjects in rows.items():
                if value_id in ext_set:
                    matched.add(value_id)
                    for sid in subjects:
                        counter[sid] = counter.get(sid, 0) + 1
            if counter:
                counters[(pid, True)] = counter
                inverse_matched[(pid, True)] = matched
    return counters, having, inverse_matched


def _facet_kernel(shard_index: int, ext_blob: array,
                  schema_ids: AbstractSet[int],
                  include_inverse: bool) -> FacetScan:
    graph = _WORKER_GRAPH
    return _facet_shard_scan(
        graph._shards[shard_index], set(ext_blob), schema_ids, include_inverse)


def _successor_kernel(shard_index: int, nodes_blob: array,
                      prop_id: int) -> Dict[int, Tuple[int, ...]]:
    """Sorted forward-successor tuples for nodes owned by one shard."""
    graph = _WORKER_GRAPH
    spo = graph._shards[shard_index].spo
    decode = graph.decode_id
    sort_keys: Dict[int, tuple] = {}

    def key(ident):
        k = sort_keys.get(ident)
        if k is None:
            k = sort_keys[ident] = decode(ident).sort_key()
        return k

    out: Dict[int, Tuple[int, ...]] = {}
    for node in nodes_blob:
        po = spo.get(node)
        targets = po.get(prop_id) if po is not None else None
        out[node] = tuple(sorted(targets, key=key)) if targets else ()
    return out


def _inverse_successor_kernel(shard_index: int, nodes_blob: array,
                              prop_id: int) -> Dict[int, Set[int]]:
    """One shard's partial subject sets for inverse steps (unsorted —
    subjects span shards, so the caller merges before sorting)."""
    graph = _WORKER_GRAPH
    os_ = graph._shards[shard_index].pos.get(prop_id)
    out: Dict[int, Set[int]] = {}
    if os_ is None:
        return out
    for node in nodes_blob:
        subjects = os_.get(node)
        if subjects:
            out[node] = set(subjects)
    return out


# ---------------------------------------------------------------------------
# The executor
# ---------------------------------------------------------------------------
class ShardExecutor:
    """Owns the fan-out decision and the (lazy) process pool of one
    :class:`ShardedGraph`.

    The pool is generation-stamped: forked workers see a copy-on-write
    snapshot of the graph, so any mutation after the fork makes the
    snapshot stale — the next parallel call tears the pool down and
    forks a fresh one.  ``mode`` resolution and the sequential-fallback
    triggers are documented on the module.
    """

    def __init__(self, graph: ShardedGraph):
        self.graph = graph
        self._pool = None
        self._pool_generation: Optional[int] = None

    @staticmethod
    def mode() -> str:
        value = os.environ.get(PARALLEL_ENV, "auto").strip().lower()
        if value not in ("auto", "sequential", "process"):
            raise ValueError(
                f"{PARALLEL_ENV} must be auto, sequential or process; "
                f"got {value!r}")
        return value

    @staticmethod
    def _fork_available() -> bool:
        import multiprocessing

        return "fork" in multiprocessing.get_all_start_methods()

    def active(self) -> bool:
        """Should the next fan-out actually fork?"""
        mode = self.mode()
        if mode == "sequential":
            return False
        if not self._fork_available() or self.graph.num_shards < 2:
            return False
        if mode == "process":
            return True
        cpus = os.cpu_count() or 1
        return cpus >= 2 and len(self.graph) >= PARALLEL_MIN_TRIPLES

    def _ensure_pool(self):
        global _WORKER_GRAPH
        generation = self.graph.generation
        if self._pool is not None and self._pool_generation == generation:
            return self._pool
        self.close()
        from concurrent.futures import ProcessPoolExecutor
        import multiprocessing

        workers = min(self.graph.num_shards, max(os.cpu_count() or 1, 2))
        # Set the inheritance global BEFORE the fork so children carry
        # the graph in their copy-on-write address space — nothing is
        # pickled on the way in except the small per-call arguments.
        _WORKER_GRAPH = self.graph
        self._pool = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=multiprocessing.get_context("fork"),
        )
        self._pool_generation = generation
        return self._pool

    def map_shards(self, kernel, *args) -> List:
        """Run ``kernel(shard_index, *args)`` for every shard, returning
        results in shard order."""
        pool = self._ensure_pool()
        futures = [
            pool.submit(kernel, index, *args)
            for index in range(self.graph.num_shards)
        ]
        return [future.result() for future in futures]

    def map_shards_args(self, kernel: Callable,
                        per_shard_args: List[tuple]) -> List:
        """Like :meth:`map_shards` but with per-shard argument tuples."""
        pool = self._ensure_pool()
        futures = [
            pool.submit(kernel, index, *shard_args)
            for index, shard_args in enumerate(per_shard_args)
        ]
        return [future.result() for future in futures]

    def close(self) -> None:
        global _WORKER_GRAPH
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
            self._pool_generation = None
            if _WORKER_GRAPH is self.graph:
                _WORKER_GRAPH = None


__all__ = [
    "GraphShard",
    "PARALLEL_ENV",
    "PARALLEL_MIN_TRIPLES",
    "ShardExecutor",
    "ShardedGraph",
    "shard_of",
]
