"""A command-driven shell over the faceted-analytics session.

Commands (one per line; arguments are whitespace-separated, names are
matched against IRI local names case-insensitively):

====================  ====================================================
``classes [-x]``       class markers (``-x`` expands the hierarchy)
``facets``             property facets of the current state, with counts
``objects [n]``        the right-frame objects
``select <cls>``       click a class marker
``value <path> <v>``   click a facet value (path = ``p1/p2/...``)
``expand <path>``      show the facet at the end of a path
``filter <path> <op> <literal>``  range filter (op ∈ =,<,>,<=,>=,!=)
``group <path> [fn]``  press G (optionally with a derived fn, e.g. YEAR)
``measure <path> <ops>``  press Σ (ops comma-separated, e.g. AVG,SUM)
``count``              Σ choice "count of items"
``pivot <path>``       switch entity type: extension becomes Joins(E, path)
``transform <fco> [p]``  the ⚙ button: derive a feature (count/exists/...)
``inspect <resource>`` browse: view a resource's card
``goto <resource>``    browse: follow an edge to a neighbour
``similar``            browse: the most similar resources
``analyze``            static-check the analytic query + its SPARQL
``run [engine]``       execute the analytic query; prints the answer
                       (engine ∈ sparql,native,columnar,row,restrictions)
``explore``            load the last answer as a new dataset
``sparql``             show the SPARQL of the current analytic query
``intent``             show the current state's intention
``search <words>``     keyword search; restart session from the hits
``health``             cache hit rates and endpoint resilience counters
``back``               undo the last transition
``save`` / ``load``    serialize / restore the interaction (JSON)
``help`` / ``quit``
====================  ====================================================

The shell is headless-friendly: :meth:`AnalyticsShell.execute` returns
the output as a string, so it can be scripted and tested.
"""

from __future__ import annotations

import shlex
from typing import Callable, Dict, List, Optional

from repro.endpoint import EndpointError
from repro.rdf.graph import Graph
from repro.rdf.terms import IRI, Literal, Term
from repro.facets.analytics import (
    AnalyticsStateError,
    AnswerFrame,
    FacetedAnalyticsSession,
)
from repro.facets.model import PropertyRef
from repro.facets.persistence import replay_session, session_to_json
from repro.facets.session import EmptyTransitionError
from repro.search.keyword import KeywordIndex
from repro.viz import render_table


class ShellError(ValueError):
    """Raised for malformed commands or unresolvable names."""


class AnalyticsShell:
    """The interactive front end; one instance per loaded graph.

    ``session_factory`` builds the session over a graph (and optional
    seed results); it is remembered so that ``search`` and ``explore``
    — which open fresh sessions — inherit the same configuration (e.g.
    the resilient, endpoint-backed variant with retry/deadline knobs).
    """

    def __init__(self, graph: Graph, session_factory=None):
        self.graph = graph
        self._session_factory = session_factory or (
            lambda g, results=None: FacetedAnalyticsSession(g, results=results))
        self.session = self._session_factory(graph)
        self._browser = None
        self.last_frame: Optional[AnswerFrame] = None
        self._frames: List[AnswerFrame] = []
        self._running = True
        self._commands: Dict[str, Callable[[List[str]], str]] = {
            "classes": self._cmd_classes,
            "facets": self._cmd_facets,
            "objects": self._cmd_objects,
            "select": self._cmd_select,
            "value": self._cmd_value,
            "expand": self._cmd_expand,
            "filter": self._cmd_filter,
            "group": self._cmd_group,
            "measure": self._cmd_measure,
            "count": self._cmd_count,
            "pivot": self._cmd_pivot,
            "transform": self._cmd_transform,
            "inspect": self._cmd_inspect,
            "goto": self._cmd_goto,
            "similar": self._cmd_similar,
            "analyze": self._cmd_analyze,
            "run": self._cmd_run,
            "explore": self._cmd_explore,
            "sparql": self._cmd_sparql,
            "intent": self._cmd_intent,
            "search": self._cmd_search,
            "back": self._cmd_back,
            "health": self._cmd_health,
            "save": self._cmd_save,
            "load": self._cmd_load,
            "help": self._cmd_help,
            "quit": self._cmd_quit,
        }

    # ------------------------------------------------------------------
    # Name resolution
    # ------------------------------------------------------------------
    def _resolve_class(self, name: str) -> IRI:
        lowered = name.lower()
        for marker in self.session.class_markers(expanded=True):
            for candidate in marker.flatten():
                if candidate.cls.local_name().lower() == lowered:
                    return candidate.cls
        # The markers may be degraded (endpoint down, nothing cached);
        # the schema is client-side, so selection stays possible.
        for cls in self.session.schema.classes():
            if isinstance(cls, IRI) and cls.local_name().lower() == lowered:
                return cls
        raise ShellError(f"unknown class {name!r} (try 'classes')")

    def _resolve_property(self, name: str) -> PropertyRef:
        lowered = name.lower()
        for ref in self.session.applicable_properties(include_inverse=True):
            if ref.prop.local_name().lower() == lowered:
                return ref
        # Fall back to any property in the graph (for expanded paths).
        for prop in self.session.schema.properties():
            if prop.local_name().lower() == lowered:
                return PropertyRef(prop)
        raise ShellError(f"unknown property {name!r} (try 'facets')")

    def _resolve_path(self, spec: str):
        return tuple(self._resolve_property(part) for part in spec.split("/"))

    def _resolve_value(self, path, text: str) -> Term:
        facet = self.session.facet(path)
        lowered = text.lower()
        for marker in facet.values:
            if marker.label.lower() == lowered:
                return marker.value
        raise ShellError(
            f"no value {text!r} in facet {facet.label} "
            f"(options: {', '.join(v.label for v in facet.values)})"
        )

    @staticmethod
    def _parse_literal(text: str) -> Literal:
        for parser in (int, float):
            try:
                return Literal.of(parser(text))
            except ValueError:
                continue
        import datetime

        try:
            return Literal.of(datetime.date.fromisoformat(text))
        except ValueError:
            return Literal.of(text)

    # ------------------------------------------------------------------
    # Command dispatch
    # ------------------------------------------------------------------
    def execute(self, line: str) -> str:
        """Run one command line; returns its output (never prints)."""
        stripped = line.strip()
        if not stripped:
            return ""
        head, _, rest = stripped.partition(" ")
        if head.lower() == "load":
            # The payload is raw JSON — must not go through shlex.
            command, args = "load", ([rest] if rest else [])
        else:
            parts = shlex.split(stripped)
            command, args = parts[0].lower(), parts[1:]
        handler = self._commands.get(command)
        if handler is None:
            return f"unknown command {command!r}; try 'help'"
        try:
            return handler(args)
        except (ShellError, EmptyTransitionError, ValueError,
                AnalyticsStateError) as exc:
            return f"error: {exc}"
        except EndpointError as exc:
            # Typed endpoint failures (timeouts, open circuit, ...) must
            # not kill the shell — report and keep the session state.
            return f"endpoint error: {type(exc).__name__}: {exc}"

    def run_script(self, lines) -> List[str]:
        """Execute many lines; returns the outputs (for tests/demos)."""
        return [self.execute(line) for line in lines]

    @property
    def running(self) -> bool:
        return self._running

    # ------------------------------------------------------------------
    # Commands
    # ------------------------------------------------------------------
    def _cmd_classes(self, args: List[str]) -> str:
        expanded = "-x" in args

        def render(markers, indent=0):
            lines = []
            for marker in markers:
                lines.append("  " * indent + str(marker))
                lines.extend(render(marker.children, indent + 1))
            return lines

        return "\n".join(render(self.session.class_markers(expanded=expanded)))

    def _cmd_facets(self, args: List[str]) -> str:
        # The batch listing: one shared scan natively, the per-facet
        # degradation-aware path on a resilient session.
        listing = self.session.all_facets()
        lines = []
        for facet in listing:
            values = ", ".join(str(v) for v in facet.values[:8])
            more = "" if len(facet.values) <= 8 else f", ... ({len(facet.values)} values)"
            lines.append(f"{facet}: {values}{more}")
        # A resilient session may return a partial listing — say so.
        for error in getattr(listing, "errors", ()):
            lines.append(f"unavailable — {error}")
        return "\n".join(lines) or "(no facets)"

    def _cmd_objects(self, args: List[str]) -> str:
        limit = int(args[0]) if args else 20
        labels = [
            t.local_name() if isinstance(t, IRI) else str(t)
            for t in self.session.objects(limit)
        ]
        suffix = (
            "" if len(self.session.extension) <= limit
            else f" ... ({len(self.session.extension)} total)"
        )
        return ", ".join(labels) + suffix

    def _cmd_select(self, args: List[str]) -> str:
        if len(args) != 1:
            raise ShellError("usage: select <class>")
        cls = self._resolve_class(args[0])
        state = self.session.select_class(cls)
        return f"{cls.local_name()}: {len(state.extension)} objects"

    def _cmd_value(self, args: List[str]) -> str:
        if len(args) != 2:
            raise ShellError("usage: value <path> <value>")
        path = self._resolve_path(args[0])
        value = self._resolve_value(path, args[1])
        state = self.session.select_value(path, value)
        return f"{state.description}: {len(state.extension)} objects"

    def _cmd_expand(self, args: List[str]) -> str:
        if len(args) != 1:
            raise ShellError("usage: expand <p1/p2/...>")
        facet = self.session.facet(self._resolve_path(args[0]))
        values = ", ".join(str(v) for v in facet.values)
        return f"{facet}: {values}"

    def _cmd_filter(self, args: List[str]) -> str:
        if len(args) != 3:
            raise ShellError("usage: filter <path> <op> <literal>")
        path = self._resolve_path(args[0])
        literal = self._parse_literal(args[2])
        state = self.session.select_range(path, args[1], literal)
        return f"{state.description}: {len(state.extension)} objects"

    def _cmd_group(self, args: List[str]) -> str:
        if not args:
            raise ShellError("usage: group <path> [derived-fn]")
        path = self._resolve_path(args[0])
        derived = args[1].upper() if len(args) > 1 else None
        self.session.group_by(path, derived=derived)
        groups = ", ".join(g.label for g in self.session.group_specs) or "(none)"
        return f"grouping by: {groups}"

    def _cmd_measure(self, args: List[str]) -> str:
        if len(args) != 2:
            raise ShellError("usage: measure <path> <op1,op2,...>")
        path = self._resolve_path(args[0])
        operations = tuple(op.strip() for op in args[1].split(","))
        self.session.measure(path, operations)
        return f"measuring {args[0]} with {', '.join(operations)}"

    def _cmd_count(self, args: List[str]) -> str:
        self.session.count_items()
        return "measuring: count of items"

    def _resolve_resource(self, name: str):
        lowered = name.lower()
        for term in self.session.graph.all_resources():
            local = getattr(term, "local_name", None)
            if local is not None and local().lower() == lowered:
                return term
        raise ShellError(f"no resource named {name!r}")

    def _render_card(self, card) -> str:
        lines = [f"{card.label}"]
        if card.types:
            lines.append("  a " + ", ".join(t.local_name() for t in card.types))
        for prop, value in card.outgoing:
            label = (
                value.local_name() if hasattr(value, "local_name")
                and value.__class__.__name__ == "IRI" else str(value)
            )
            lines.append(f"  {prop.local_name()}: {label}")
        for source, prop in card.incoming:
            label = (
                source.local_name() if hasattr(source, "local_name")
                and source.__class__.__name__ == "IRI" else str(source)
            )
            lines.append(f"  ^{prop.local_name()}: {label}")
        return "\n".join(lines)

    def _cmd_inspect(self, args: List[str]) -> str:
        """inspect <resource> — start (or continue) browsing a resource."""
        from repro.facets.browser import ResourceBrowser

        if args:
            resource = self._resolve_resource(args[0])
            self._browser = ResourceBrowser(self.session.graph, resource)
        elif getattr(self, "_browser", None) is None:
            raise ShellError("usage: inspect <resource>")
        return self._render_card(self._browser.view())

    def _cmd_goto(self, args: List[str]) -> str:
        """goto <resource> — follow an edge from the inspected resource."""
        if getattr(self, "_browser", None) is None:
            raise ShellError("inspect a resource first")
        if len(args) != 1:
            raise ShellError("usage: goto <resource>")
        target = self._resolve_resource(args[0])
        try:
            card = self._browser.follow(target)
        except ValueError as exc:
            raise ShellError(str(exc)) from exc
        return self._render_card(card)

    def _cmd_similar(self, args: List[str]) -> str:
        """similar — resources most similar to the inspected one."""
        if getattr(self, "_browser", None) is None:
            raise ShellError("inspect a resource first")
        hits = self._browser.similar()
        if not hits:
            return "no similar resources"
        return "\n".join(
            f"  {hit.label} (similarity {hit.similarity:.2f}, "
            f"{hit.shared} shared values)"
            for hit in hits
        )

    def _cmd_pivot(self, args: List[str]) -> str:
        if len(args) != 1:
            raise ShellError("usage: pivot <p1/p2/...>")
        state = self.session.pivot_to(self._resolve_path(args[0]))
        return f"{state.description}: {len(state.extension)} objects"

    _FCO_FACTORIES = {
        "value": 1, "exists": 1, "count": 1, "asfeatures": 1,
        "degree": 0, "avgdegree": 0,
    }

    def _cmd_transform(self, args: List[str]) -> str:
        """transform <fco> [property] — apply a feature operator (⚙)."""
        if not args:
            raise ShellError(
                "usage: transform <value|exists|count|asfeatures|degree|"
                "avgdegree> [property]"
            )
        from repro.hifun import (
            fco_average_degree,
            fco_count,
            fco_degree,
            fco_exists,
            fco_value,
            fco_values_as_features,
        )

        kind = args[0].lower()
        if kind in ("degree", "avgdegree"):
            operator = fco_degree() if kind == "degree" else fco_average_degree()
        else:
            if len(args) != 2:
                raise ShellError(f"transform {kind} needs a property argument")
            prop = self._resolve_property(args[1]).prop
            factory = {
                "value": fco_value,
                "exists": fco_exists,
                "count": fco_count,
                "asfeatures": fco_values_as_features,
            }.get(kind)
            if factory is None:
                raise ShellError(f"unknown transformation {kind!r}")
            operator = factory(prop)
        refs = self.session.apply_transformation(operator)
        names = ", ".join(r.prop.local_name() for r in refs)
        return f"created {len(refs)} derived facet(s): {names}"

    def _cmd_analyze(self, args: List[str]) -> str:
        """analyze — run the static analyzers over the current analytic
        query and its SPARQL translation; never executes anything."""
        report = self.session.analyze_query()
        counts = []
        if report.errors:
            counts.append(f"{len(report.errors)} error(s)")
        if report.warnings:
            counts.append(f"{len(report.warnings)} warning(s)")
        summary = ", ".join(counts) if counts else "clean"
        return f"{report.render()}\n[{summary}]"

    def _cmd_run(self, args: List[str]) -> str:
        engines = ("sparql", "native", "columnar", "row", "restrictions")
        engine = args[0] if args else "sparql"
        if engine not in engines:
            raise ShellError(
                f"unknown engine {engine!r}; expected one of {', '.join(engines)}"
            )
        frame = self.session.run(engine)
        self.last_frame = frame
        self._frames.append(frame)
        return render_table(frame.columns, frame.rows)

    def _cmd_explore(self, args: List[str]) -> str:
        if self.last_frame is None:
            raise ShellError("no answer to explore; 'run' first")
        self.session = self._session_factory(self.last_frame.to_graph())
        self.graph = self.session.graph
        return (
            f"loaded the answer as a new dataset "
            f"({len(self.last_frame)} rows); facets: "
            + ", ".join(f.prop.name for f in self.session.property_facets())
        )

    def _cmd_sparql(self, args: List[str]) -> str:
        return self.session.translation().text

    def _cmd_intent(self, args: List[str]) -> str:
        return self.session.state.intention.describe()

    def _cmd_search(self, args: List[str]) -> str:
        if not args:
            raise ShellError("usage: search <keywords>")
        hits = KeywordIndex(self.graph).search(" ".join(args))
        if not hits:
            return "no results"
        self.session = self._session_factory(
            self.graph, results=[h.resource for h in hits]
        )
        rendered = ", ".join(f"{h.label} ({h.score:.1f})" for h in hits[:8])
        return f"{len(hits)} results: {rendered}"

    def _cmd_back(self, args: List[str]) -> str:
        state = self.session.back()
        return f"back to '{state.description}': {len(state.extension)} objects"

    def _cmd_health(self, args: List[str]) -> str:
        """health — cache counters, plus resilience counters when the
        session is endpoint-backed."""
        lines = ["caches:"]
        for stats in self.session.cache_stats().values():
            lines.append(f"  {stats}")
        health = getattr(self.session, "health", None)
        if health is None:
            lines.append("endpoint: none (local session)")
            return "\n".join(lines)
        report = health()
        outcomes = ", ".join(
            f"{tag}={n}" for tag, n in report["outcomes"].items())
        lines.extend((
            f"queries: {report['queries']} ({outcomes})",
            f"retries: {report['retries']}, "
            f"backoff: {report['backoff_seconds']:.2f}s virtual",
            f"circuit: {report['circuit_state']}",
            f"degradations: {report['incidents']} "
            f"({report['stale_serves']} served stale, "
            f"{report['dropped']} dropped)",
        ))
        return "\n".join(lines)

    def _cmd_save(self, args: List[str]) -> str:
        return session_to_json(self.session)

    def _cmd_load(self, args: List[str]) -> str:
        if not args:
            raise ShellError("usage: load <json>")
        self.session = replay_session(self.graph, args[0])
        return f"restored: {self.session.state.intention.describe()}"

    def _cmd_help(self, args: List[str]) -> str:
        return __doc__.split("Commands", 1)[1]

    def _cmd_quit(self, args: List[str]) -> str:
        self._running = False
        return "bye"


def build_shell(argv=None) -> AnalyticsShell:
    """Parse CLI flags and construct the shell (separated for tests).

    The resilience knobs apply to the endpoint-backed commands (facet
    listings, counts, ``run``): ``--network``/``--fault-rate`` put a
    simulated (and optionally flaky) remote endpoint behind the
    session, and ``--retries``/``--timeout`` configure the client-side
    defences of :class:`repro.endpoint.ResilientEndpoint`.  Without any
    of these flags the shell stays fully local and infallible.
    """
    import argparse

    from repro.datasets import products_graph
    from repro.rdf.turtle import parse_file

    parser = argparse.ArgumentParser(
        prog="repro.app", description="RDF-Analytics interactive shell")
    parser.add_argument("file", nargs="?", default=None,
                        help="Turtle file to load (default: bundled products KG)")
    parser.add_argument("--network", choices=("local", "offpeak", "peak"),
                        default="local",
                        help="simulate a remote endpoint with this latency model")
    parser.add_argument("--fault-rate", type=float, default=0.0, metavar="P",
                        help="inject endpoint faults with total probability P")
    parser.add_argument("--retries", type=int, default=None, metavar="N",
                        help="attempts per endpoint query (1 = no retries)")
    parser.add_argument("--timeout", type=float, default=None, metavar="S",
                        help="per-query deadline in (virtual) seconds")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed for latency, fault and backoff sampling")
    parser.add_argument("--analyze", action="store_true",
                        help="strict mode: statically reject ill-typed "
                        "analytic queries before execution")
    parser.add_argument("--shards", type=int, default=1, metavar="N",
                        help="partition the store into N subject-hash "
                        "shards (parallel scans on multi-core hosts; "
                        "results are identical at any shard count)")
    args = parser.parse_args(argv)
    if not 0.0 <= args.fault_rate <= 1.0:
        parser.error(f"--fault-rate must be in [0, 1], got {args.fault_rate}")
    if args.shards < 1:
        parser.error(f"--shards must be >= 1, got {args.shards}")

    graph = parse_file(args.file) if args.file else products_graph()
    if args.shards > 1:
        from repro.rdf.sharding import ShardedGraph

        graph = ShardedGraph.from_graph(graph, shards=args.shards)
    resilient = (args.network != "local" or args.fault_rate > 0.0
                 or args.retries is not None or args.timeout is not None)
    if not resilient:
        if args.analyze:
            return AnalyticsShell(
                graph,
                session_factory=lambda g, results=None:
                    FacetedAnalyticsSession(g, results=results, analyze=True),
            )
        return AnalyticsShell(graph)

    from repro.endpoint import (
        FaultModel,
        FlakyEndpointSimulator,
        LocalEndpoint,
        NetworkModel,
        RetryPolicy,
    )
    from repro.facets.resilient import ResilientFacetedSession

    model = {"offpeak": NetworkModel.offpeak(),
             "peak": NetworkModel.peak(),
             "local": None}[args.network]
    faults = (FaultModel.uniform(args.fault_rate)
              if args.fault_rate > 0.0 else None)
    retry = (RetryPolicy(max_attempts=max(1, args.retries))
             if args.retries is not None else None)

    def endpoint_factory(g):
        if model is None and faults is None:
            return LocalEndpoint(g)
        return FlakyEndpointSimulator(g, model, faults, seed=args.seed)

    def session_factory(g, results=None):
        return ResilientFacetedSession(
            g, results=results, endpoint_factory=endpoint_factory,
            retry=retry, timeout=args.timeout, seed=args.seed,
            analyze=args.analyze)

    return AnalyticsShell(graph, session_factory=session_factory)


def main() -> None:  # pragma: no cover - interactive entry point
    """Interactive REPL over the bundled products KG (or a Turtle file)."""
    shell = build_shell()
    print("RDF-Analytics shell — 'help' lists the commands.")
    while shell.running:
        try:
            line = input("rdfa> ")
        except EOFError:
            break
        output = shell.execute(line)
        if output:
            print(output)


if __name__ == "__main__":  # pragma: no cover
    main()
