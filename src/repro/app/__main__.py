"""``python -m repro.app`` — the RDF-Analytics shell."""

from repro.app.cli import main

if __name__ == "__main__":
    main()
