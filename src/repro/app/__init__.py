"""The RDF-Analytics terminal application (Chapter 6's running system,
minus the browser).

:class:`repro.app.cli.AnalyticsShell` is a command-driven front end over
:class:`~repro.facets.analytics.FacetedAnalyticsSession` exposing every
GUI action of Fig. 5.1/6.2 as a command (``classes``, ``facets``,
``select``, ``expand``, ``filter``, ``group``, ``measure``, ``run``,
``explore``, ``back``, ``save``/``load``...).  It is fully scriptable —
each command takes a line and returns the printed output — which is how
the test suite drives it.
"""

from repro.app.cli import AnalyticsShell

__all__ = ["AnalyticsShell"]
