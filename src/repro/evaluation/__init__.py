"""The task-based evaluation (Chapter 8): tasks + user-cohort simulation.

* :mod:`repro.evaluation.tasks` — the eight evaluation tasks, each a
  runnable script over a :class:`FacetedAnalyticsSession`; running them
  against the real system is the *implementability* test of §8.2.
* :mod:`repro.evaluation.study` — a seeded stochastic cohort model that
  regenerates the *shape* of the user study of §8.1 (Figs 8.1/8.2):
  per-task completion percentage and 1–5 rating for two cohorts (with /
  without an IT background).  See DESIGN.md, *Substitutions*.
"""

from repro.evaluation.tasks import EVALUATION_TASKS, Task
from repro.evaluation.study import (
    CohortConfig,
    StudyResult,
    TaskOutcome,
    run_user_study,
)

__all__ = [
    "Task",
    "EVALUATION_TASKS",
    "CohortConfig",
    "StudyResult",
    "TaskOutcome",
    "run_user_study",
]
