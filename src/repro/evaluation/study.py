"""Simulated task-based user study (§8.1, Figs 8.1/8.2).

The dissertation ran the eight tasks with two user cohorts (with and
without an IT background) and reports, per task, the completion
percentage and the mean 1–5 ease-of-use rating; overall both were high,
with harder tasks (paths, nesting) scoring somewhat lower, and the IT
cohort slightly ahead.

We regenerate that *shape* with a seeded stochastic model: each
simulated user attempts each task; the success probability and rating
decrease with task difficulty, increase with user expertise, and carry
individual noise.  The defaults are calibrated so totals land in the
high-80s/low-90s completion and ≈4/5 rating the paper reports.  (See
DESIGN.md, *Substitutions* — this replaces human participants, which a
code reproduction cannot have.)
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.evaluation.tasks import EVALUATION_TASKS, Task


@dataclass(frozen=True)
class CohortConfig:
    """One user cohort: size and expertise level (0..1)."""

    name: str
    size: int
    expertise: float

    def __post_init__(self):
        if not 0.0 <= self.expertise <= 1.0:
            raise ValueError("expertise must be within [0, 1]")
        if self.size <= 0:
            raise ValueError("cohort size must be positive")


#: The paper's two cohorts: 10 users each, with/without IT background.
DEFAULT_COHORTS = (
    CohortConfig("IT background", 10, 0.85),
    CohortConfig("no IT background", 10, 0.55),
)


@dataclass(frozen=True)
class TaskOutcome:
    """Aggregated outcome of one task across all users of a cohort."""

    task_id: str
    cohort: str
    attempts: int
    completions: int
    mean_rating: float

    @property
    def completion_rate(self) -> float:
        return self.completions / self.attempts if self.attempts else 0.0


@dataclass
class StudyResult:
    """The full study outcome, with the Fig. 8.1/8.2 aggregations."""

    outcomes: List[TaskOutcome]
    tasks: Tuple[Task, ...]

    def per_task(self) -> List[Tuple[str, float, float]]:
        """Fig. 8.1 rows: (task, completion %, mean rating), cohorts merged."""
        rows = []
        for task in self.tasks:
            task_outcomes = [o for o in self.outcomes if o.task_id == task.task_id]
            attempts = sum(o.attempts for o in task_outcomes)
            completions = sum(o.completions for o in task_outcomes)
            rating = sum(o.mean_rating * o.attempts for o in task_outcomes) / attempts
            rows.append((task.task_id, 100.0 * completions / attempts, rating))
        return rows

    def per_cohort_task(self, cohort: str) -> List[Tuple[str, float, float]]:
        rows = []
        for task in self.tasks:
            for outcome in self.outcomes:
                if outcome.task_id == task.task_id and outcome.cohort == cohort:
                    rows.append(
                        (task.task_id, 100.0 * outcome.completion_rate,
                         outcome.mean_rating)
                    )
        return rows

    def totals(self) -> Tuple[float, float]:
        """Fig. 8.2: (total completion %, total mean rating)."""
        attempts = sum(o.attempts for o in self.outcomes)
        completions = sum(o.completions for o in self.outcomes)
        rating = sum(o.mean_rating * o.attempts for o in self.outcomes) / attempts
        return (100.0 * completions / attempts, rating)


def run_user_study(
    cohorts: Sequence[CohortConfig] = DEFAULT_COHORTS,
    tasks: Sequence[Task] = EVALUATION_TASKS,
    seed: int = 2023,
) -> StudyResult:
    """Simulate the study: every user of every cohort attempts every task.

    Model: ``P(success) = clamp(0.72 + 0.35·expertise − 0.05·(difficulty−1)
    + noise)``; the rating of a successful attempt is
    ``5 − 0.30·(difficulty−1) + 0.8·(expertise−0.5) + noise`` clamped to
    [1, 5]; failures rate 1–3.  All draws come from one seeded RNG, so
    results are exactly reproducible.
    """
    rng = random.Random(seed)
    outcomes: List[TaskOutcome] = []
    for cohort in cohorts:
        for task in tasks:
            completions = 0
            ratings: List[float] = []
            for _user in range(cohort.size):
                individual = rng.gauss(0.0, 0.06)
                p_success = _clamp(
                    0.72
                    + 0.35 * cohort.expertise
                    - 0.05 * (task.difficulty - 1)
                    + individual,
                    0.05,
                    1.0,
                )
                succeeded = rng.random() < p_success
                if succeeded:
                    completions += 1
                    rating = (
                        5.0
                        - 0.30 * (task.difficulty - 1)
                        + 0.8 * (cohort.expertise - 0.5)
                        + rng.gauss(0.0, 0.25)
                    )
                else:
                    rating = 2.0 + rng.random()
                ratings.append(_clamp(rating, 1.0, 5.0))
            outcomes.append(
                TaskOutcome(
                    task_id=task.task_id,
                    cohort=cohort.name,
                    attempts=cohort.size,
                    completions=completions,
                    mean_rating=sum(ratings) / len(ratings),
                )
            )
    return StudyResult(outcomes=outcomes, tasks=tuple(tasks))


def _clamp(value: float, low: float, high: float) -> float:
    return max(low, min(high, value))
