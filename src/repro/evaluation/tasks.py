"""The eight evaluation tasks of the task-based study (§8.1, §8.2).

Each :class:`Task` carries a natural-language statement (mirroring the
style of the dissertation's tasks over the products KG), a difficulty
grade derived from the number and kind of UI actions it needs, and a
``run`` script that drives a real :class:`FacetedAnalyticsSession` —
executing all of them end-to-end is the *implementability* check of
§8.2.

The ladder of tasks covers every interaction feature: plain faceted
restriction, range filters, aggregates without/with grouping, property
paths, multi-attribute grouping, derived attributes, and a nested
(HAVING) query via the answer-frame reload.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from typing import Callable, List, Tuple

from repro.rdf.namespace import EX
from repro.rdf.terms import Literal
from repro.facets.analytics import FacetedAnalyticsSession


@dataclass(frozen=True)
class Task:
    """One evaluation task.

    ``actions`` is the minimum number of UI clicks/selections the task
    needs; ``difficulty`` is a 1–5 grade (1 = plain faceted click,
    5 = nested analytic query), used by the cohort simulation.
    """

    task_id: str
    statement: str
    actions: int
    difficulty: int
    run: Callable[[FacetedAnalyticsSession], object]


def _t1(session: FacetedAnalyticsSession):
    """Find all laptops (plain class selection)."""
    session.select_class(EX.Laptop)
    return session.objects()


def _t2(session: FacetedAnalyticsSession):
    """Find the laptops manufactured by DELL (facet value click)."""
    session.select_class(EX.Laptop)
    session.select_value((EX.manufacturer,), EX.DELL)
    return session.objects()


def _t3(session: FacetedAnalyticsSession):
    """Find the laptops with 2 or more USB ports released in 2021."""
    session.select_class(EX.Laptop)
    session.select_range((EX.USBPorts,), ">=", Literal.of(2))
    session.select_range(
        (EX.releaseDate,), ">=", Literal.of(_dt.date(2021, 1, 1))
    )
    return session.objects()


def _t4(session: FacetedAnalyticsSession):
    """Average price of laptops (aggregate without grouping) — Ex. 1."""
    session.select_class(EX.Laptop)
    session.measure((EX.price,), "AVG")
    return session.run()


def _t5(session: FacetedAnalyticsSession):
    """Count of laptops grouped by manufacturer (aggregate + grouping)."""
    session.select_class(EX.Laptop)
    session.group_by((EX.manufacturer,))
    session.count_items()
    return session.run()


def _t6(session: FacetedAnalyticsSession):
    """Count of 2021 laptops with an SSD and ≥2 USB ports grouped by the
    manufacturer's country (path expansion + grouping) — Ex. 3."""
    session.select_class(EX.Laptop)
    session.select_range(
        (EX.releaseDate,), ">=", Literal.of(_dt.date(2021, 1, 1))
    )
    session.select_values((EX.hardDrive,), [EX.SSD1, EX.SSD2])
    session.select_range((EX.USBPorts,), ">=", Literal.of(2))
    session.group_by((EX.manufacturer, EX.origin))
    session.count_items()
    return session.run()


def _t7(session: FacetedAnalyticsSession):
    """Average, sum and max price of laptops with 2–4 USB ports grouped
    by manufacturer and its origin (Fig. 6.2: multi-aggregate, pairing,
    derived grouping path)."""
    session.select_class(EX.Laptop)
    session.select_interval((EX.USBPorts,), Literal.of(2), Literal.of(4))
    session.group_by((EX.manufacturer,))
    session.group_by((EX.manufacturer, EX.origin))
    session.measure((EX.price,), ("AVG", "SUM", "MAX"))
    return session.run()


def _t8(session: FacetedAnalyticsSession):
    """Average price of laptops grouped by manufacturer and release year,
    keeping only groups with average price above 850 — the nested /
    HAVING query of Example 4, via the answer-frame reload."""
    session.select_class(EX.Laptop)
    session.group_by((EX.manufacturer,))
    session.group_by((EX.releaseDate,), derived="YEAR")
    session.measure((EX.price,), "AVG")
    frame = session.run()
    nested = frame.explore()
    nested.select_range(
        (frame.column_property("avg_price"),), ">", Literal.of(850)
    )
    return nested.objects()


EVALUATION_TASKS: Tuple[Task, ...] = (
    Task("T1", "Find all laptops.", actions=1, difficulty=1, run=_t1),
    Task("T2", "Find the laptops manufactured by DELL.", actions=2,
         difficulty=1, run=_t2),
    Task("T3", "Find the laptops with at least 2 USB ports released in "
               "2021.", actions=3, difficulty=2, run=_t3),
    Task("T4", "Find the average price of laptops.", actions=2,
         difficulty=2, run=_t4),
    Task("T5", "Count the laptops per manufacturer.", actions=3,
         difficulty=3, run=_t5),
    Task("T6", "Count the 2021 laptops with an SSD and at least 2 USB "
               "ports, grouped by the manufacturer's country.", actions=6,
         difficulty=4, run=_t6),
    Task("T7", "Average, sum and max price of laptops with 2 to 4 USB "
               "ports, grouped by manufacturer and its origin.", actions=6,
         difficulty=4, run=_t7),
    Task("T8", "Average price of laptops by manufacturer and year, only "
               "for groups with average price above 850.", actions=7,
         difficulty=5, run=_t8),
)
