#!/usr/bin/env python
"""Dependency-free static checker backing ``make lint`` / ``make typecheck``.

The project's pyproject.toml carries full ruff and mypy configurations;
when those tools are available the Makefile uses them.  This script is
the stdlib-only fallback so the gates run (and fail meaningfully) in
hermetic environments where nothing can be pip-installed.  It is a
deliberately small subset of the real tools:

``--lint`` (codes ``L0xx``):

* ``L001`` unused module-level import (``__init__.py`` re-export files
  are exempt, as are names re-exported via ``__all__``)
* ``L002`` bare ``except:`` clause
* ``L003`` mutable default argument (list/dict/set literal or call)

``--typecheck`` (codes ``T0xx``):

* ``T001`` file does not compile
* ``T002`` partially annotated signature (some parameters annotated,
  some not — all-or-nothing keeps signatures honest)
* ``T003`` parameters annotated but the return type missing

Exit status is the number of offending files (capped at 1), so both
modes work as Make gates.
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

Finding = Tuple[Path, int, int, str, str]


def iter_python_files(paths: List[str]) -> Iterator[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_file() and path.suffix == ".py":
            yield path
        elif path.is_dir():
            yield from sorted(path.rglob("*.py"))


def parse(path: Path) -> Tuple[ast.Module, str]:
    source = path.read_text(encoding="utf-8")
    return ast.parse(source, filename=str(path)), source


# ---------------------------------------------------------------------------
# Lint checks
# ---------------------------------------------------------------------------
def _imported_names(node: ast.stmt) -> List[Tuple[str, int, int]]:
    """(bound name, line, col) pairs introduced by an import statement."""
    out: List[Tuple[str, int, int]] = []
    if isinstance(node, ast.Import):
        for alias in node.names:
            name = alias.asname or alias.name.split(".")[0]
            out.append((name, node.lineno, node.col_offset))
    elif isinstance(node, ast.ImportFrom):
        if node.module == "__future__":
            return out
        for alias in node.names:
            if alias.name == "*":
                continue
            name = alias.asname or alias.name
            out.append((name, node.lineno, node.col_offset))
    return out


def _used_names(tree: ast.Module) -> set:
    used = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Attribute):
            # ``pkg.mod.attr`` marks the root name used.
            root = node
            while isinstance(root, ast.Attribute):
                root = root.value
            if isinstance(root, ast.Name):
                used.add(root.id)
    return used


def _exported_names(tree: ast.Module) -> set:
    for node in tree.body:
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if "__all__" in targets and isinstance(
                node.value, (ast.List, ast.Tuple)
            ):
                return {
                    elt.value
                    for elt in node.value.elts
                    if isinstance(elt, ast.Constant)
                    and isinstance(elt.value, str)
                }
    return set()


def lint_file(path: Path) -> List[Finding]:
    try:
        tree, source = parse(path)
    except SyntaxError as exc:
        return [(path, exc.lineno or 0, exc.offset or 0, "L000",
                 f"syntax error: {exc.msg}")]
    findings: List[Finding] = []

    # L001 — unused module-level imports.
    if path.name != "__init__.py":
        used = _used_names(tree)
        exported = _exported_names(tree)
        # Names referenced from string annotations / docstring doctests
        # are approximated by a plain-text scan — conservative on purpose.
        for node in tree.body:
            for name, line, col in _imported_names(node):
                if name in used or name in exported:
                    continue
                if name in source.replace(f"import {name}", "", 1):
                    # Mentioned somewhere else (string annotation, doc
                    # example, __getattr__ table) — give the benefit of
                    # the doubt.
                    continue
                findings.append(
                    (path, line, col, "L001", f"unused import {name!r}")
                )

    for node in ast.walk(tree):
        # L002 — bare except.
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            findings.append(
                (path, node.lineno, node.col_offset, "L002",
                 "bare 'except:' — name the exception types")
            )
        # L003 — mutable default arguments.
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                mutable = isinstance(
                    default, (ast.List, ast.Dict, ast.Set)
                ) or (
                    isinstance(default, ast.Call)
                    and isinstance(default.func, ast.Name)
                    and default.func.id in ("list", "dict", "set")
                )
                if mutable:
                    findings.append(
                        (path, default.lineno, default.col_offset, "L003",
                         f"mutable default argument in {node.name}()")
                    )
    return findings


# ---------------------------------------------------------------------------
# Typecheck checks
# ---------------------------------------------------------------------------
def typecheck_file(path: Path) -> List[Finding]:
    try:
        tree, source = parse(path)
        compile(source, str(path), "exec")
    except SyntaxError as exc:
        return [(path, exc.lineno or 0, exc.offset or 0, "T001",
                 f"does not compile: {exc.msg}")]
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        args = node.args
        params = args.posonlyargs + args.args + args.kwonlyargs
        # self/cls never need annotations.
        if params and params[0].arg in ("self", "cls"):
            params = params[1:]
        for extra in (args.vararg, args.kwarg):
            if extra is not None:
                params = params + [extra]
        annotated = sum(1 for p in params if p.annotation is not None)
        if 0 < annotated < len(params):
            missing = ", ".join(
                p.arg for p in params if p.annotation is None
            )
            findings.append(
                (path, node.lineno, node.col_offset, "T002",
                 f"{node.name}() is partially annotated "
                 f"(missing: {missing})")
            )
        if (
            params
            and annotated == len(params)
            and node.returns is None
            and node.name != "__init__"
        ):
            findings.append(
                (path, node.lineno, node.col_offset, "T003",
                 f"{node.name}() annotates its parameters but not its "
                 "return type")
            )
    return findings


# ---------------------------------------------------------------------------
def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--lint", action="store_true",
                      help="run the L0xx lint checks")
    mode.add_argument("--typecheck", action="store_true",
                      help="run the T0xx annotation checks")
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories (default: src/repro)")
    args = parser.parse_args(argv)

    check = lint_file if args.lint else typecheck_file
    findings: List[Finding] = []
    files = 0
    for path in iter_python_files(args.paths or ["src/repro"]):
        files += 1
        findings.extend(check(path))
    for path, line, col, code, message in findings:
        print(f"{path}:{line}:{col}: {code} {message}")
    label = "lint" if args.lint else "typecheck"
    print(f"{label}: {files} files checked, {len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
