"""Diff two benchmark JSON artifacts and gate on regressions.

``benchmarks/out/<name>.json`` files (written by
``benchmarks/_workload.write_bench_json`` or the conftest auto-emit
hook) record per-operation median milliseconds.  This tool compares a
baseline against a candidate run of the same benchmark::

    python tools/bench_compare.py baseline.json candidate.json
    python tools/bench_compare.py --threshold 0.10 old.json new.json
    python tools/bench_compare.py --dir benchmarks/out /tmp/bench-out

An operation regresses when its candidate median exceeds the baseline
by more than ``--threshold`` (a fraction: 0.25 means "25 % slower
fails").  The exit status is the CI contract: 0 when nothing regressed,
1 when something did, 2 on unusable input (missing file, schema
mismatch, different benchmarks).  Operations present in only one file
are reported but never fail the gate — benchmarks are allowed to grow.

``--dir`` switches the two arguments to *directories*: every
``*.json`` filename present in both trees is diffed pairwise under the
same exit contract (any regression anywhere → 1, any unusable pair →
2), and filenames present on only one side are reported but never fail
the gate, mirroring the per-operation growth rule one level up.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional, Tuple

#: Artifacts faster than this are pure noise at perf_counter resolution;
#: below it, ratios are not evidence of anything.
MIN_MEANINGFUL_MS = 0.05


def load_artifact(path: str) -> Dict[str, object]:
    """Read one bench JSON, failing loudly on schema it cannot diff."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict) or "ops" not in data:
        raise ValueError(f"{path}: not a bench artifact (no 'ops' key)")
    if data.get("version") != 1:
        raise ValueError(
            f"{path}: unsupported bench JSON version {data.get('version')!r}")
    return data


def compare(
    baseline: Dict[str, object],
    candidate: Dict[str, object],
    threshold: float,
) -> Tuple[List[str], List[str]]:
    """Returns (report lines, regressed operation labels)."""
    lines: List[str] = []
    regressions: List[str] = []
    base_ops: Dict[str, dict] = baseline["ops"]  # type: ignore[assignment]
    cand_ops: Dict[str, dict] = candidate["ops"]  # type: ignore[assignment]
    if baseline.get("name") != candidate.get("name"):
        raise ValueError(
            f"different benchmarks: {baseline.get('name')!r} "
            f"vs {candidate.get('name')!r}")
    if baseline.get("engine") != candidate.get("engine"):
        lines.append(
            f"note: engine variants differ "
            f"({baseline.get('engine')!r} vs {candidate.get('engine')!r})")
    for label in sorted(set(base_ops) | set(cand_ops)):
        if label not in base_ops:
            lines.append(f"  new      {label}: "
                         f"{cand_ops[label]['median_ms']:.3f} ms (no baseline)")
            continue
        if label not in cand_ops:
            lines.append(f"  removed  {label}")
            continue
        old = float(base_ops[label]["median_ms"])
        new = float(cand_ops[label]["median_ms"])
        if old < MIN_MEANINGFUL_MS and new < MIN_MEANINGFUL_MS:
            lines.append(f"  ~        {label}: below timer resolution")
            continue
        ratio = new / old if old > 0 else float("inf")
        delta = f"{old:.3f} -> {new:.3f} ms ({ratio:.0%} of baseline)"
        if ratio > 1.0 + threshold:
            regressions.append(label)
            lines.append(f"  REGRESSED {label}: {delta}")
        elif ratio < 1.0 - threshold:
            lines.append(f"  improved {label}: {delta}")
        else:
            lines.append(f"  ok       {label}: {delta}")
    return lines, regressions


def compare_dirs(
    base_dir: str,
    cand_dir: str,
    threshold: float,
) -> Tuple[List[str], List[str], List[str]]:
    """Diff every same-named ``*.json`` artifact between two directories.

    Returns ``(report lines, regressed labels, unusable filenames)``.
    Regressed labels are qualified as ``<filename>:<op>`` so a multi-
    artifact report stays unambiguous.  A pair that cannot be diffed
    (bad schema, mismatched benchmark names) lands in the third list
    instead of aborting the whole sweep — the caller still exits 2.
    """
    base_names = {n for n in os.listdir(base_dir) if n.endswith(".json")}
    cand_names = {n for n in os.listdir(cand_dir) if n.endswith(".json")}
    lines: List[str] = []
    regressions: List[str] = []
    unusable: List[str] = []
    for name in sorted(base_names | cand_names):
        if name not in base_names:
            lines.append(f"new artifact      {name} (no baseline)")
            continue
        if name not in cand_names:
            lines.append(f"missing artifact  {name} (baseline only)")
            continue
        try:
            baseline = load_artifact(os.path.join(base_dir, name))
            candidate = load_artifact(os.path.join(cand_dir, name))
            pair_lines, pair_regressions = compare(
                baseline, candidate, threshold)
        except (OSError, ValueError, json.JSONDecodeError, KeyError) as exc:
            lines.append(f"unusable          {name}: {exc}")
            unusable.append(name)
            continue
        lines.append(f"{baseline['name']} [{name}]")
        lines.extend(pair_lines)
        regressions.extend(f"{name}:{label}" for label in pair_regressions)
    return lines, regressions, unusable


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Gate on regressions between two bench JSON artifacts.")
    parser.add_argument("baseline", help="baseline artifact (the reference)")
    parser.add_argument("candidate", help="candidate artifact (the new run)")
    parser.add_argument(
        "--threshold", type=float, default=0.25,
        help="allowed slowdown fraction before an op regresses "
             "(default 0.25 = 25%%)")
    parser.add_argument(
        "--dir", action="store_true",
        help="treat the two arguments as directories and diff every "
             "*.json filename present in both")
    args = parser.parse_args(argv)
    if args.threshold < 0:
        print("threshold must be non-negative", file=sys.stderr)
        return 2
    if args.dir:
        if not os.path.isdir(args.baseline) or not os.path.isdir(args.candidate):
            print("bench_compare: --dir arguments must both be directories",
                  file=sys.stderr)
            return 2
        lines, regressions, unusable = compare_dirs(
            args.baseline, args.candidate, args.threshold)
        print(f"bench_compare: {args.baseline} vs {args.candidate} "
              f"(threshold {args.threshold:.0%})")
        for line in lines:
            print(line)
        if unusable:
            print(f"{len(unusable)} artifact(s) unusable: "
                  + ", ".join(unusable), file=sys.stderr)
            return 2
        if regressions:
            print(f"{len(regressions)} operation(s) regressed: "
                  + ", ".join(regressions))
            return 1
        print("no regressions")
        return 0
    try:
        baseline = load_artifact(args.baseline)
        candidate = load_artifact(args.candidate)
        lines, regressions = compare(baseline, candidate, args.threshold)
    except (OSError, ValueError, json.JSONDecodeError, KeyError) as exc:
        print(f"bench_compare: {exc}", file=sys.stderr)
        return 2
    print(f"bench_compare: {baseline['name']} "
          f"(threshold {args.threshold:.0%})")
    for line in lines:
        print(line)
    if regressions:
        print(f"{len(regressions)} operation(s) regressed: "
              + ", ".join(regressions))
        return 1
    print("no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
